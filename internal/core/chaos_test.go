package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/sqltypes"
)

// chaosSystem builds the standard fault-tolerance fixture: one table, one
// cached view in a region with a 10s propagation interval, 2s delay and 1s
// heartbeat, resilience enabled and the injector wired in.
func chaosSystem(t *testing.T) (*System, *fault.Injector) {
	t.Helper()
	sys := NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R",
		UpdateInterval:    10 * time.Second,
		UpdateDelay:       2 * time.Second,
		HeartbeatInterval: 1 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	sys.Analyze()
	inj := fault.New(7)
	sys.InjectFaults(inj)
	sys.EnableResilience(remote.Policy{})
	// One full propagation cycle so the region has synchronized.
	if err := sys.Run(14 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sys, inj
}

// remoteQuery forces the guard to the remote branch: a 1ms currency bound
// is always tighter than the region's ≥2s replication staleness.
const remoteQuery = "SELECT v FROM T WHERE id = 1 CURRENCY 1 MS ON (T)"

// TestChaosBreakerTripsAndHalfOpens proves the breaker lifecycle against a
// partition: consecutive failures trip it open, fail-fast queries do not
// reach the link, and after the heartbeat-cadence cooldown a half-open
// probe closes it once the partition heals.
func TestChaosBreakerTripsAndHalfOpens(t *testing.T) {
	sys, inj := chaosSystem(t)
	link := sys.Cache.Link()
	inj.SetPartitioned(true)

	// DefaultPolicy: 3 attempts per query, breaker threshold 5 — two failed
	// queries accumulate 6 consecutive failures and trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(remoteQuery); err == nil {
			t.Fatalf("query %d succeeded under partition", i)
		}
	}
	if got := link.Breaker().State(); got != remote.BreakerOpen {
		t.Fatalf("breaker state after partition failures = %v, want open", got)
	}
	if link.Breaker().Trips() == 0 {
		t.Fatal("breaker recorded no trips")
	}

	// Open breaker: the next query fails fast with ErrBreakerOpen and the
	// attempt never reaches the injector.
	denials := inj.Stats().PartitionDenials
	_, err := sys.Query(remoteQuery)
	if !errors.Is(err, remote.ErrBreakerOpen) {
		t.Fatalf("open-breaker query error = %v, want ErrBreakerOpen", err)
	}
	if got := inj.Stats().PartitionDenials; got != denials {
		t.Fatalf("open breaker still sent %d call(s) to the link", got-denials)
	}

	// The cooldown is the heartbeat cadence (1s): advancing past it lets one
	// half-open probe through; with the partition still up it re-opens.
	if err := sys.Run(1100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(remoteQuery); err == nil {
		t.Fatal("half-open probe succeeded under partition")
	}
	if got := link.Breaker().State(); got != remote.BreakerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open", got)
	}

	// Heal, wait another cooldown: the probe succeeds and closes the breaker.
	inj.SetPartitioned(false)
	if err := sys.Run(1100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(remoteQuery)
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("healed query returned %d rows", len(res.Rows))
	}
	if got := link.Breaker().State(); got != remote.BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", got)
	}

	snap := sys.Cache.Obs().Snapshot()
	if snap.Counters["remote_breaker_trips_total"] == 0 {
		t.Error("remote_breaker_trips_total not exported")
	}
	if got := snap.Gauges["remote_breaker_state"]; got != int64(remote.BreakerClosed) {
		t.Errorf("remote_breaker_state gauge = %d, want closed (%d)", got, int64(remote.BreakerClosed))
	}
}

// guardedQuery keeps a SwitchUnion in the plan: a 5s bound is inside the
// region's staleness oscillation ([2s, 12s] over the 10s cycle), so the
// optimizer must leave the decision to the runtime guard. driftPastBound
// positions the clock where the guard rejects the local branch.
const guardedQuery = "SELECT v FROM T WHERE id = 1 CURRENCY 5000 MS ON (T)"

// driftPastBound advances the system until region staleness exceeds bound.
func driftPastBound(t *testing.T, sys *System, bound time.Duration) {
	t.Helper()
	for i := 0; sys.staleness(t) <= bound; i++ {
		if i > 50 {
			t.Fatalf("staleness never exceeded %s", bound)
		}
		if err := sys.Run(1 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosServeLocalUnderPartition proves graceful degradation: with
// ActionServeLocal a partitioned remote branch falls back to the guarded
// local view, the result carries an explicit staleness-violation warning,
// and the degraded read is visible in metrics and EXPLAIN ANALYZE.
func TestChaosServeLocalUnderPartition(t *testing.T) {
	sys, inj := chaosSystem(t)
	driftPastBound(t, sys, 5*time.Second)
	inj.SetPartitioned(true)

	sess := sys.Cache.NewSession()
	sess.Action = mtcache.ActionServeLocal
	res, err := sess.Query(guardedQuery)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("degraded rows = %v, want the local view's row", res.Rows)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(res.Violations))
	}
	v := res.Violations[0]
	if v.Action != "serve-local" || v.Region != 1 {
		t.Errorf("violation = %+v, want serve-local on region 1", v)
	}
	if v.Err == nil || !remote.IsUnavailable(v.Err) {
		t.Errorf("violation error %v is not an unavailability", v.Err)
	}
	if !v.StalenessKnown || v.Staleness <= 0 {
		t.Errorf("violation staleness unknown: %+v", v)
	}

	snap := sys.Cache.Obs().Snapshot()
	if got := snap.Counters[`degraded_reads_total{region="1"}`]; got != 1 {
		t.Errorf("degraded_reads_total = %d, want 1", got)
	}

	tr, err := sess.ExplainAnalyze(guardedQuery)
	if err != nil {
		t.Fatalf("explain analyze: %v", err)
	}
	if tr.Trace == nil || !strings.Contains(tr.Trace.String(), "DEGRADED") {
		t.Errorf("trace does not flag the degraded guard:\n%s", tr.Trace)
	}
}

// TestChaosFailFastWithoutDegradation pins the default violation action:
// without a serve-local policy a partitioned remote branch fails the query
// (fail fast), it does not silently serve stale data.
func TestChaosFailFastWithoutDegradation(t *testing.T) {
	sys, inj := chaosSystem(t)
	inj.SetPartitioned(true)
	if _, err := sys.Query(remoteQuery); err == nil || !remote.IsUnavailable(err) {
		t.Fatalf("default action error = %v, want an unavailability failure", err)
	}
}

// TestChaosAgentStallRestartRecovers proves the watchdog loop: a wedged
// agent lets staleness grow past the stall threshold, the watchdog restarts
// it (clearing the soft stall), and the region's staleness gauge recovers
// to the healthy propagation bound.
func TestChaosAgentStallRestartRecovers(t *testing.T) {
	sys, inj := chaosSystem(t)
	agent := sys.Cache.Agent(1)

	healthy := func() time.Duration {
		ts, ok := sys.Cache.LastSync(1)
		if !ok {
			t.Fatal("region never synchronized")
		}
		return sys.Clock.Now().Sub(ts)
	}
	if s := healthy(); s > 13*time.Second {
		t.Fatalf("pre-stall staleness %s already unhealthy", s)
	}

	inj.StallAgent(1, true)
	// Two update intervals of stall: wake-ups swallowed, staleness grows,
	// but the 3-interval threshold has not fired yet.
	if err := sys.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := agent.Restarts(); got != 0 {
		t.Fatalf("watchdog restarted after %s of stall (restarts=%d), threshold is 30s", 25*time.Second, got)
	}
	stalled := healthy()
	if stalled < 20*time.Second {
		t.Fatalf("staleness %s did not grow during stall", stalled)
	}

	// Crossing the third missed interval fires the watchdog: restart, soft
	// stall cleared, immediate catch-up step.
	if err := sys.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := agent.Restarts(); got == 0 {
		t.Fatal("watchdog never restarted the stalled agent")
	}
	if inj.AgentStalled(1) {
		t.Fatal("soft stall survived the restart")
	}
	// One more propagation cycle: the gauge is back inside the healthy
	// bound (interval + delay + heartbeat slack).
	if err := sys.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if recovered := healthy(); recovered > 13*time.Second {
		t.Fatalf("staleness %s did not recover after restart", recovered)
	}

	sys.Cache.RefreshStalenessGauges()
	snap := sys.Cache.Obs().Snapshot()
	if got := snap.Counters[`repl_agent_restarts_total{region="1"}`]; got == 0 {
		t.Error("repl_agent_restarts_total not exported")
	}
	if lag := snap.Gauges[`repl_agent_lag_ns{region="1"}`]; time.Duration(lag) > 30*time.Second {
		t.Errorf("repl_agent_lag_ns still %s after recovery", time.Duration(lag))
	}
	if st := snap.Gauges[`region_staleness_ns{region="1"}`]; time.Duration(st) > 13*time.Second {
		t.Errorf("region_staleness_ns %s after recovery", time.Duration(st))
	}
}

// TestChaosBlockActionWaitsForReplication proves ActionBlock: a query whose
// guard initially fails blocks while replication catches up (driven through
// the cache's wait hook by the coordinator) and then answers locally.
func TestChaosBlockActionWaitsForReplication(t *testing.T) {
	sys, _ := chaosSystem(t)

	// Position the clock just after a propagation so staleness is near its
	// minimum, then let it drift past the bound.
	if err := sys.Run(9 * time.Second); err != nil {
		t.Fatal(err)
	}

	sess := sys.Cache.NewSession()
	sess.Action = mtcache.ActionBlock
	// Drift to a point where staleness exceeds the 5s bound: the guard
	// rejects the local branch, and instead of going remote the session
	// blocks one update interval for the next propagation.
	driftPastBound(t, sys, 5*time.Second)
	before := sys.Clock.Now()
	res, err := sess.Query(guardedQuery)
	if err != nil {
		t.Fatalf("blocking query failed: %v", err)
	}
	if len(res.LocalViews) == 0 {
		t.Fatal("blocking query did not end on the local branch")
	}
	if len(res.Violations) != 1 || res.Violations[0].Action != "block" {
		t.Fatalf("violations = %+v, want one block record", res.Violations)
	}
	if res.Violations[0].Waits == 0 {
		t.Error("block violation recorded zero waits")
	}
	if !sys.Clock.Now().After(before) {
		t.Error("blocking query did not consume virtual time")
	}

	snap := sys.Cache.Obs().Snapshot()
	if got := snap.Counters["guard_block_waits_total"]; got == 0 {
		t.Error("guard_block_waits_total not exported")
	}
}

// staleness reads the region's current staleness (test helper).
func (s *System) staleness(t *testing.T) time.Duration {
	t.Helper()
	ts, ok := s.Cache.LastSync(1)
	if !ok {
		t.Fatal("region never synchronized")
	}
	return s.Clock.Now().Sub(ts)
}
