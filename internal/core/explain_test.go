package core_test

import (
	"testing"
	"time"

	"relaxedcc/internal/tpcd"
)

const remoteChild = "Remote(SELECT Customer.c_custkey, Customer.c_name, Customer.c_acctbal " +
	"FROM Customer WHERE (Customer.c_custkey = 42))"

// TestExplainAnalyzeGuardedLocal is the golden-output test for EXPLAIN
// ANALYZE on a currency-guarded point query whose guard accepts the local
// branch. The shape rendering is deterministic under the virtual clock:
// node names, row counts, the chosen branch and the staleness observed at
// decision time.
func TestExplainAnalyzeGuardedLocal(t *testing.T) {
	sys := newSystem(t)
	res, err := sys.ExplainAnalyze(tpcd.PointQuery(42, "CURRENCY 3600 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE returned no trace")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := "Project  rows=1\n" +
		"└─ SwitchUnion Guard(cust_prj|Remote(Customer))  rows=1 [guard -> local branch, region 1, staleness 6s]\n" +
		"   ├─ Project  rows=1\n" +
		"   │  └─ IndexScan(cust_prj.pk_cust_prj)  rows=1\n" +
		"   └─ " + remoteChild + "  (not executed)\n"
	if got := res.Trace.ShapeString(); got != want {
		t.Fatalf("trace shape:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeRemoteFallback forces the guard down the remote branch:
// the same cached guarded plan re-executed after the region ages past the
// bound (no replication steps run) must show the remote child executed and
// the local branch skipped.
func TestExplainAnalyzeRemoteFallback(t *testing.T) {
	sys := newSystem(t)
	q := tpcd.PointQuery(42, "CURRENCY 15 ON (Customer)")
	first, err := sys.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if g := first.Trace.Children[0].Guard; g == nil || g.Chosen != 0 {
		t.Fatalf("fresh run should take the local branch: %+v", g)
	}
	// Let the region age past the bound with no replication steps.
	sys.Clock.Advance(60 * time.Second)
	second, err := sys.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	want := "Project  rows=1\n" +
		"└─ SwitchUnion Guard(cust_prj|Remote(Customer))  rows=1 [guard -> remote branch, region 1, staleness 1m6s]\n" +
		"   ├─ Project  (not executed)\n" +
		"   │  └─ IndexScan(cust_prj.pk_cust_prj)  (not executed)\n" +
		"   └─ " + remoteChild + "  rows=1\n"
	if got := second.Trace.ShapeString(); got != want {
		t.Fatalf("trace shape:\n%s\nwant:\n%s", got, want)
	}
	if second.RemoteQueries == 0 {
		t.Fatal("fallback run must have gone remote")
	}
}

// TestExplainStatementForms checks the statement-level plumbing: EXPLAIN
// returns the plan without executing, EXPLAIN ANALYZE executes and traces.
func TestExplainStatementForms(t *testing.T) {
	sys := newSystem(t)
	sess := sys.Cache.NewSession()

	plain, err := sess.Execute("EXPLAIN " + tpcd.PointQuery(42, "CURRENCY 3600 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Explained || plain.Plan == nil || plain.Trace != nil || len(plain.Rows) != 0 {
		t.Fatalf("EXPLAIN result = explained=%v plan=%v trace=%v rows=%d",
			plain.Explained, plain.Plan != nil, plain.Trace != nil, len(plain.Rows))
	}

	analyzed, err := sess.Execute("EXPLAIN ANALYZE " + tpcd.PointQuery(42, "CURRENCY 3600 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if analyzed.Trace == nil || len(analyzed.Rows) != 1 {
		t.Fatalf("EXPLAIN ANALYZE result = trace=%v rows=%d", analyzed.Trace != nil, len(analyzed.Rows))
	}
	// The trace also lands in the cache's store for /trace/last.
	sql, root := sys.Cache.Traces().Last()
	if root == nil || sql == "" {
		t.Fatal("trace store not populated")
	}
}
