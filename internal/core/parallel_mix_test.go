package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"relaxedcc/internal/harness"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/tpcd"
)

func sortedRowStrings(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint([]sqltypes.Value(r))
	}
	sort.Strings(out)
	return out
}

// TestConcurrentQueryMixMatchesSerial runs the Table 4.2 query mix from
// several goroutines — each with its own cache session — against one shared
// system, and requires every concurrent result to equal the serial baseline.
// Under -race this validates that the batched executor and the shared
// storage/catalog state tolerate concurrent query execution.
func TestConcurrentQueryMixMatchesSerial(t *testing.T) {
	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: 0.005, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cases := harness.PlanChoiceCases()

	// Serial baseline: no time advancement or writes happen below, so every
	// later execution must see exactly this data.
	baseline := make(map[string][]string, len(cases))
	sess := sys.Cache.NewSession()
	for _, c := range cases {
		res, err := sess.Query(c.SQL)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		baseline[c.Name] = sortedRowStrings(res.Rows)
	}

	const goroutines = 4
	const iterations = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := sys.Cache.NewSession()
			for it := 0; it < iterations; it++ {
				// Stagger the starting case per goroutine so different
				// queries overlap in time.
				for i := range cases {
					c := cases[(i+g)%len(cases)]
					res, err := sess.Query(c.SQL)
					if err != nil {
						t.Errorf("g%d %s: %v", g, c.Name, err)
						return
					}
					got := sortedRowStrings(res.Rows)
					want := baseline[c.Name]
					if len(got) != len(want) {
						t.Errorf("g%d %s: %d rows, want %d", g, c.Name, len(got), len(want))
						return
					}
					for j := range got {
						if got[j] != want[j] {
							t.Errorf("g%d %s: row %d differs from serial baseline", g, c.Name, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
