// Package core wires the full system of the paper together: a back-end
// server, a mid-tier cache (MTCache), transactional replication with
// currency regions, and a deterministic simulation driver for heartbeats
// and distribution agents. It is the top-level entry point used by the
// examples, the experiment harness and the benchmarks.
package core

import (
	"fmt"
	"time"

	"relaxedcc/internal/audit"
	"relaxedcc/internal/backend"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/repl"
	"relaxedcc/internal/tuner"
	"relaxedcc/internal/vclock"
)

// System is a running back end + cache pair on a shared virtual clock.
type System struct {
	Clock   *vclock.Virtual
	Backend *backend.Server
	Cache   *mtcache.Cache
	Coord   *repl.Coordinator

	// Watchdogs supervise the primary cache's distribution agents once
	// EnableResilience has run (see resilience.go).
	Watchdogs []*repl.Watchdog

	resilient bool
	watched   map[int]bool
	faults    *fault.Injector
	// tuner is the closed-loop autotuner installed by EnableAutotune (see
	// autotune.go); nil until enabled.
	tuner *tuner.Loop
	// audit is the delivered-guarantee auditor installed by EnableAudit (see
	// audit.go); nil until enabled.
	audit *audit.Auditor
}

// NewSystem creates an empty system on a fresh virtual clock.
func NewSystem() *System {
	clock := vclock.NewVirtual()
	b := backend.New(clock)
	return &System{
		Clock:   clock,
		Backend: b,
		Cache:   mtcache.New(clock, b),
		Coord:   repl.NewCoordinator(clock),
	}
}

// AddCache attaches an additional mid-tier cache to the same back end —
// the paper's scale-out deployment ("we replicate part of the database to
// other database servers that act as caches"). The new cache needs its own
// currency regions (distinct ids) and views, wired via AddCacheRegion and
// mtcache.CreateView.
func (s *System) AddCache() *mtcache.Cache {
	return mtcache.New(s.Clock, s.Backend)
}

// AddCacheRegion creates a currency region for an additional cache and
// schedules its heartbeat and distribution agent on the shared coordinator.
func (s *System) AddCacheRegion(c *mtcache.Cache, r *catalog.Region) error {
	agent, err := c.AddRegion(r)
	if err != nil {
		return err
	}
	s.Coord.AddHeartbeatFn(r.ID, agent.HeartbeatInterval, s.Backend.Beat)
	s.Coord.AddAgent(agent)
	return nil
}

// MustExec runs DDL/DML on the back end, panicking on error (setup helper).
func (s *System) MustExec(sql string) {
	if _, err := s.Backend.Exec(sql); err != nil {
		panic(fmt.Sprintf("core: %s: %v", sql, err))
	}
}

// AddRegion creates a currency region end to end: catalog entries on both
// servers, the heartbeat row and beater on the back end, and the
// distribution agent on the coordinator's schedule.
func (s *System) AddRegion(r *catalog.Region) error {
	agent, err := s.Cache.AddRegion(r)
	if err != nil {
		return err
	}
	// Heartbeats follow the agent's effective cadence so autotuner retunes
	// apply to the freshness signal too, not just propagation.
	s.Coord.AddHeartbeatFn(r.ID, agent.HeartbeatInterval, s.Backend.Beat)
	s.Coord.AddAgent(agent)
	if s.faults != nil {
		agent.SetStallProbe(s.faults)
	}
	if s.resilient {
		s.watch(agent)
	}
	if s.tuner != nil {
		s.tuner.AddRegion(agentActuator{agent})
	}
	if s.audit != nil {
		s.wireAuditAgent(s.audit, agent)
	}
	return nil
}

// CreateView defines a cached materialized view (see mtcache.CreateView).
func (s *System) CreateView(v *catalog.View, extraIndexes ...*catalog.Index) error {
	return s.Cache.CreateView(v, extraIndexes...)
}

// Analyze refreshes statistics on the back end and mirrors them into the
// cache's shadow catalog.
func (s *System) Analyze() {
	s.Backend.AnalyzeAll()
	s.Cache.RefreshShadowStats()
}

// Run advances simulated time by d, firing heartbeats and replication
// agents deterministically.
func (s *System) Run(d time.Duration) error { return s.Coord.Advance(d) }

// RunTo advances simulated time to t.
func (s *System) RunTo(t time.Time) error { return s.Coord.AdvanceTo(t) }

// Query runs a SELECT at the cache with full C&C enforcement.
func (s *System) Query(sql string) (*mtcache.QueryResult, error) {
	return s.Cache.Query(sql)
}

// ExplainAnalyze runs a SELECT at the cache with per-operator tracing: the
// returned result's Trace field holds the annotated plan tree (per-node
// time and rows, guard verdicts, region staleness at decision time).
func (s *System) ExplainAnalyze(sql string) (*mtcache.QueryResult, error) {
	return s.Cache.ExplainAnalyze(sql)
}

// QueryBackend runs a SELECT directly on the back end (bypassing the
// cache), e.g. to verify cached answers against master data.
func (s *System) QueryBackend(sql string) (*exec.Result, error) {
	return s.Backend.Query(sql)
}

// Exec forwards DML through the cache to the back end, as applications
// would.
func (s *System) Exec(sql string) (int, error) {
	return s.Cache.Exec(sql)
}
