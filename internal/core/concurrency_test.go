package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
)

// TestConcurrentQueriesUpdatesAndReplication hammers the system from
// multiple goroutines — readers with mixed bounds, writers, and a
// replication driver advancing virtual time — to exercise the locking in
// storage, catalogs, the heartbeat table and the remote link. Run under
// -race this validates the concurrency claims of the storage and cache
// layers.
func TestConcurrentQueriesUpdatesAndReplication(t *testing.T) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE acct (id BIGINT NOT NULL PRIMARY KEY, bal BIGINT NOT NULL)")
	for i := 1; i <= 50; i++ {
		sys.MustExec(fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", i, i))
	}
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: 2 * time.Second, UpdateDelay: 500 * time.Millisecond,
		HeartbeatInterval: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "acct_prj", BaseTable: "acct", Columns: []string{"id", "bal"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	const writers = 2
	const opsPerWorker = 150
	var wg sync.WaitGroup
	var failures atomic.Int64
	var localAnswers atomic.Int64
	stopDriver := make(chan struct{})
	driverDone := make(chan struct{})

	// Replication driver: advances virtual time continuously.
	go func() {
		defer close(driverDone)
		for {
			select {
			case <-stopDriver:
				return
			default:
			}
			if err := sys.Run(100 * time.Millisecond); err != nil {
				failures.Add(1)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			sess := sys.Cache.NewSession()
			for i := 0; i < opsPerWorker; i++ {
				id := 1 + rng.Intn(50)
				clause := ""
				if rng.Intn(2) == 0 {
					clause = fmt.Sprintf(" CURRENCY %d MS ON (acct)", 500+rng.Intn(10000))
				}
				res, err := sess.Query(fmt.Sprintf("SELECT bal FROM acct WHERE id = %d%s", id, clause))
				if err != nil {
					t.Errorf("reader: %v", err)
					failures.Add(1)
					return
				}
				if len(res.Rows) != 1 {
					t.Errorf("reader: %d rows for id %d", len(res.Rows), id)
					failures.Add(1)
					return
				}
				if len(res.LocalViews) > 0 {
					localAnswers.Add(1)
				}
			}
		}(int64(r + 1))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				id := 1 + rng.Intn(50)
				if _, err := sys.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", id)); err != nil {
					t.Errorf("writer: %v", err)
					failures.Add(1)
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(stopDriver)
	<-driverDone
	if failures.Load() > 0 {
		t.Fatalf("%d failures", failures.Load())
	}
	if localAnswers.Load() == 0 {
		t.Log("note: no query was answered locally this run")
	}
	// After quiescing, the view converges to the master.
	if err := sys.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	back, err := sys.QueryBackend("SELECT id, bal FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	view := sys.Cache.ViewData("acct_prj")
	if view.Len() != len(back.Rows) {
		t.Fatalf("view rows %d vs master %d", view.Len(), len(back.Rows))
	}
}
