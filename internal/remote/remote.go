// Package remote is the cache-to-back-end link: the boundary a remote query
// crosses in the paper's two-server setup. It executes shipped SQL on the
// back-end server in process, while accounting for queries sent, rows and
// bytes shipped — the quantities the optimizer's cost model trades off —
// and supporting failure injection for testing violation actions.
package remote

import (
	"fmt"
	"sync"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqltypes"
)

// Stats counts traffic across the link.
type Stats struct {
	Queries int64
	Rows    int64
	Bytes   int64
}

// Client is the cache's connection to the back end.
type Client struct {
	backend *backend.Server

	mu    sync.Mutex
	stats Stats
	down  bool
}

// NewClient connects a cache to its back-end server.
func NewClient(b *backend.Server) *Client { return &Client{backend: b} }

// Query ships sql to the back end and returns all result rows. It
// implements opt.RemoteExecutor.
func (c *Client) Query(sql string) ([]sqltypes.Row, error) {
	res, err := c.QueryResult(sql)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryResult is Query with the full result (schema and timings).
func (c *Client) QueryResult(sql string) (*exec.Result, error) {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: link to back-end server is down")
	}
	c.stats.Queries++
	c.mu.Unlock()

	res, err := c.backend.Query(sql)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, r := range res.Rows {
		bytes += rowBytes(r)
	}
	c.mu.Lock()
	c.stats.Rows += int64(len(res.Rows))
	c.stats.Bytes += bytes
	c.mu.Unlock()
	return res, nil
}

// Stats returns a snapshot of link traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the traffic counters.
func (c *Client) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// SetDown injects (or clears) a link failure: subsequent queries fail until
// cleared.
func (c *Client) SetDown(down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = down
}

// rowBytes estimates the wire size of one row.
func rowBytes(r sqltypes.Row) int64 {
	var n int64
	for _, v := range r {
		switch v.Kind() {
		case sqltypes.KindString:
			n += int64(len(v.Str())) + 2
		case sqltypes.KindNull, sqltypes.KindBool:
			n++
		default:
			n += 8
		}
	}
	return n
}
