// Package remote is the cache-to-back-end link: the boundary a remote query
// crosses in the paper's two-server setup. It executes shipped SQL on the
// back-end server in process, while accounting for queries sent, rows and
// bytes shipped — the quantities the optimizer's cost model trades off.
//
// The link is where network reality intrudes on the paper's model, so it
// carries the fault-tolerance layer: deterministic fault injection
// (internal/fault), per-query deadlines, bounded retries with exponential
// backoff and jitter, and a circuit breaker that fails fast after a run of
// consecutive failures and half-opens on the heartbeat cadence. Callers
// classify failures with IsUnavailable and apply the paper's violation
// actions (serve stale locally, block, or error).
package remote

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

// Stats counts traffic and failures across the link.
type Stats struct {
	Queries int64
	Rows    int64
	Bytes   int64
	// Retries is how many retry attempts the link made after failures.
	Retries int64
	// Failures is how many link-level failures were observed (per attempt).
	Failures int64
}

// Fault injects synthetic failures into the link; fault.Injector implements
// it. Inject is consulted once per attempt with the link's current time and
// returns the synthetic latency to impose plus the injected error, if any.
type Fault interface {
	Inject(now time.Time) (time.Duration, error)
}

// Client is the cache's connection to the back end.
type Client struct {
	backend *backend.Server

	mu     sync.Mutex
	stats  Stats
	down   bool
	clock  vclock.Clock
	policy Policy
	rng    *rand.Rand
	sleep  func(time.Duration)
	fault  Fault

	breaker *Breaker
	// seenTrips is how many breaker trips have been exported to the
	// remote_breaker_trips_total counter.
	seenTrips int64
	// tracer receives span events for retries and breaker transitions; nil
	// means untraced. lastBreakerState dedupes transition events.
	tracer           *obs.Tracer
	lastBreakerState BreakerState

	// Metrics, bound by Instrument; nil fields mean the link runs
	// unmetered.
	mRetries      *obs.Counter // remote_retries_total
	mFailures     *obs.Counter // remote_failures_total
	mDeadline     *obs.Counter // remote_deadline_exceeded_total
	mBreakerTrips *obs.Counter // remote_breaker_trips_total
	mBreakerState *obs.Gauge   // remote_breaker_state
}

// NewClient connects a cache to its back-end server with the legacy
// single-shot behavior (no deadline, no retries, no breaker); call
// Configure to enable resilience.
func NewClient(b *backend.Server) *Client { return &Client{backend: b, policy: PassthroughPolicy()} }

// Configure binds the link to a clock and a resilience policy. The clock
// drives deadlines, backoff waits and breaker cooldowns; under a virtual
// clock every wait advances simulated time deterministically (no real
// sleeping ever happens), under a wall clock waits block on clock.After.
func (c *Client) Configure(clock vclock.Clock, p Policy) {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
	c.policy = p
	c.rng = rand.New(rand.NewSource(p.Seed))
	if p.BreakerThreshold > 0 {
		c.breaker = NewBreaker(p.BreakerThreshold, p.BreakerCooldown)
	} else {
		c.breaker = nil
	}
	if v, ok := clock.(*vclock.Virtual); ok {
		c.sleep = func(d time.Duration) { v.Advance(d) }
	} else if clock != nil {
		c.sleep = func(d time.Duration) { <-clock.After(d) }
	}
	c.publishBreakerStateLocked()
}

// SetWait overrides how the link spends backoff and injected-latency time
// (after Configure). The simulation driver points this at the replication
// coordinator so simulated time advanced by link waits also fires due
// heartbeats and agent propagations.
func (c *Client) SetWait(wait func(time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleep = wait
}

// SetFault installs (or clears, with nil) a fault injector on the link.
func (c *Client) SetFault(f Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fault = f
}

// Breaker returns the link's circuit breaker, or nil when disabled.
func (c *Client) Breaker() *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breaker
}

// Instrument binds the link's metrics to a registry: retry and failure
// counters, deadline expirations, breaker trips and the breaker-state
// gauge (0 closed, 1 half-open, 2 open).
func (c *Client) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRetries = reg.Counter("remote_retries_total")
	c.mFailures = reg.Counter("remote_failures_total")
	c.mDeadline = reg.Counter("remote_deadline_exceeded_total")
	c.mBreakerTrips = reg.Counter("remote_breaker_trips_total")
	c.mBreakerState = reg.Gauge("remote_breaker_state")
	c.publishBreakerStateLocked()
}

func (c *Client) publishBreakerStateLocked() {
	state := BreakerClosed
	if c.breaker != nil {
		state = c.breaker.State()
	}
	if state != c.lastBreakerState {
		c.lastBreakerState = state
		if c.tracer != nil {
			switch state {
			case BreakerOpen:
				c.tracer.Event(obs.EventBreakerOpen)
			case BreakerHalfOpen:
				c.tracer.Event(obs.EventBreakerHalfOpen)
			default:
				c.tracer.Event(obs.EventBreakerClosed)
			}
		}
	}
	if c.mBreakerState == nil {
		return
	}
	c.mBreakerState.Set(int64(state))
	if c.breaker == nil {
		return
	}
	if trips := c.breaker.Trips(); trips > c.seenTrips {
		if c.mBreakerTrips != nil {
			c.mBreakerTrips.Add(trips - c.seenTrips)
		}
		c.seenTrips = trips
	}
}

// SetTracer attaches lifecycle tracing to the link: retry attempts and
// breaker state transitions emit span events (span_events_total{kind}).
func (c *Client) SetTracer(t *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

func (c *Client) publishBreakerState() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishBreakerStateLocked()
}

// Query ships sql to the back end and returns all result rows. It
// implements opt.RemoteExecutor.
func (c *Client) Query(sql string) ([]sqltypes.Row, error) {
	res, err := c.QueryResult(sql)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryResult is Query with the full result (schema and timings). It runs
// the resilient path: breaker check, bounded retries with backoff under the
// per-query deadline. SQL-level errors from the back end return immediately
// and never count against the breaker.
func (c *Client) QueryResult(sql string) (*exec.Result, error) {
	c.mu.Lock()
	pol := c.policy
	clock := c.clock
	sleep := c.sleep
	rng := c.rng
	br := c.breaker
	c.mu.Unlock()

	now := func() time.Time {
		if clock != nil {
			return clock.Now()
		}
		return time.Time{}
	}
	var deadline time.Time
	if clock != nil && pol.Deadline > 0 {
		deadline = now().Add(pol.Deadline)
	}

	if br != nil && !br.Allow(now()) {
		c.noteFailure()
		return nil, ErrBreakerOpen
	}

	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		res, err := c.attempt(sql, now(), sleep, deadline)
		if err == nil {
			if br != nil {
				br.Record(now(), true)
				c.publishBreakerState()
			}
			return res, nil
		}
		if !IsUnavailable(err) {
			// The link delivered the query; the back end rejected it.
			return nil, err
		}
		lastErr = err
		c.noteFailure()
		if br != nil {
			br.Record(now(), false)
			c.publishBreakerState()
		}
		if attempt >= attempts {
			break
		}
		if br != nil && br.State() == BreakerOpen {
			// The breaker tripped mid-query: stop hammering the link.
			break
		}
		wait := pol.backoff(attempt, rng)
		if !deadline.IsZero() && now().Add(wait).After(deadline) {
			c.noteDeadline()
			return nil, fmt.Errorf("%w after %d attempt(s): %v", ErrDeadlineExceeded, attempt, lastErr)
		}
		if wait > 0 && sleep != nil {
			sleep(wait)
		}
		c.noteRetry()
	}
	if attempts > 1 {
		return nil, fmt.Errorf("remote: %d attempt(s) failed: %w", attempts, lastErr)
	}
	return nil, lastErr
}

// attempt performs one try: fault injection (paying its latency), the
// deadline check, then the in-process back-end call.
func (c *Client) attempt(sql string, now time.Time, sleep func(time.Duration), deadline time.Time) (*exec.Result, error) {
	c.mu.Lock()
	f := c.fault
	down := c.down
	c.mu.Unlock()

	if f != nil {
		lat, err := f.Inject(now)
		if lat > 0 && sleep != nil {
			sleep(lat)
			now = now.Add(lat)
		}
		if !deadline.IsZero() && now.After(deadline) {
			c.noteDeadline()
			return nil, fmt.Errorf("%w (reply after deadline)", ErrDeadlineExceeded)
		}
		if err != nil {
			return nil, fmt.Errorf("remote: injected: %w", err)
		}
	}
	if down {
		return nil, ErrLinkDown
	}

	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()

	res, err := c.backend.Query(sql)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, r := range res.Rows {
		bytes += rowBytes(r)
	}
	c.mu.Lock()
	c.stats.Rows += int64(len(res.Rows))
	c.stats.Bytes += bytes
	c.mu.Unlock()
	return res, nil
}

func (c *Client) noteFailure() {
	c.mu.Lock()
	c.stats.Failures++
	m := c.mFailures
	c.mu.Unlock()
	if m != nil {
		m.Inc()
	}
}

func (c *Client) noteRetry() {
	c.mu.Lock()
	c.stats.Retries++
	m := c.mRetries
	tr := c.tracer
	c.mu.Unlock()
	if m != nil {
		m.Inc()
	}
	tr.Event(obs.EventRemoteRetry)
}

func (c *Client) noteDeadline() {
	c.mu.Lock()
	m := c.mDeadline
	c.mu.Unlock()
	if m != nil {
		m.Inc()
	}
}

// Stats returns a snapshot of link traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the traffic counters.
func (c *Client) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// SetDown injects (or clears) a link failure: subsequent queries fail until
// cleared. Prefer a fault.Injector for richer scenarios; SetDown remains
// the simplest hard-partition switch.
func (c *Client) SetDown(down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = down
}

// rowBytes estimates the wire size of one row.
func rowBytes(r sqltypes.Row) int64 {
	var n int64
	for _, v := range r {
		switch v.Kind() {
		case sqltypes.KindString:
			n += int64(len(v.Str())) + 2
		case sqltypes.KindNull, sqltypes.KindBool:
			n++
		default:
			n += 8
		}
	}
	return n
}
