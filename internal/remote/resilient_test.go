package remote

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/vclock"
)

// failN fails its first n injections with a transient error, then succeeds.
type failN struct{ left int }

func (f *failN) Inject(time.Time) (time.Duration, error) {
	if f.left > 0 {
		f.left--
		return 0, fault.ErrTransient
	}
	return 0, nil
}

func newResilientLink(t *testing.T, clock *vclock.Virtual, p Policy) *Client {
	t.Helper()
	b := backend.New(clock)
	if _, err := b.Exec("CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, name VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("INSERT INTO t VALUES (1, 'aaaa'), (2, 'bb')"); err != nil {
		t.Fatal(err)
	}
	c := NewClient(b)
	c.Configure(clock, p)
	return c
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{
		MaxAttempts: 3, BackoffBase: 10 * time.Millisecond, BackoffMax: time.Second,
	})
	c.SetFault(&failN{left: 2})
	start := clock.Now()
	rows, err := c.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	st := c.Stats()
	if st.Retries != 2 || st.Failures != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Exponential backoff without jitter: 10ms + 20ms of virtual time.
	if got := clock.Now().Sub(start); got != 30*time.Millisecond {
		t.Fatalf("backoff advanced %v of virtual time, want 30ms", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{MaxAttempts: 3, BackoffBase: time.Millisecond})
	c.SetFault(&failN{left: 100})
	_, err := c.Query("SELECT id FROM t")
	if err == nil || !IsUnavailable(err) {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("cause lost: %v", err)
	}
	if st := c.Stats(); st.Failures != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadlineBoundsRetryTime(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{
		Deadline: 100 * time.Millisecond, MaxAttempts: 10,
		BackoffBase: 80 * time.Millisecond,
	})
	c.SetFault(&failN{left: 100})
	_, err := c.Query("SELECT id FROM t")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestInjectedLatencyCountsAgainstDeadline(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{Deadline: 50 * time.Millisecond, MaxAttempts: 1})
	inj := fault.New(1)
	inj.SetLatency(200*time.Millisecond, 0)
	c.SetFault(inj)
	_, err := c.Query("SELECT id FROM t")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestBreakerTripsAndHalfOpens(t *testing.T) {
	clock := vclock.NewVirtual()
	cooldown := 5 * time.Second // the heartbeat cadence in deployment
	c := newResilientLink(t, clock, Policy{
		MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: cooldown,
	})
	reg := obs.NewRegistry()
	c.Instrument(reg)
	c.SetDown(true)

	for i := 0; i < 3; i++ {
		if _, err := c.Query("SELECT id FROM t"); !errors.Is(err, ErrLinkDown) {
			t.Fatalf("query %d: err = %v", i, err)
		}
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %v", got)
	}
	// Open: fails fast without touching the backend.
	qBefore := c.Stats().Queries
	if _, err := c.Query("SELECT id FROM t"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().Queries != qBefore {
		t.Fatal("open breaker let a query through")
	}

	// Cooldown elapses; the half-open probe still fails -> re-open.
	clock.Advance(cooldown)
	if _, err := c.Query("SELECT id FROM t"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("probe err = %v", err)
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v", got)
	}
	if got := c.Breaker().Trips(); got != 2 {
		t.Fatalf("trips = %d", got)
	}

	// Heal; next probe closes the breaker.
	c.SetDown(false)
	clock.Advance(cooldown)
	if _, err := c.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v", got)
	}

	snap := reg.Snapshot()
	if v := snap.Gauges["remote_breaker_state"]; v != int64(BreakerClosed) {
		t.Fatalf("remote_breaker_state = %d", v)
	}
	if v := snap.Counters["remote_breaker_trips_total"]; v != 2 {
		t.Fatalf("remote_breaker_trips_total = %d", v)
	}
	if v := snap.Counters["remote_failures_total"]; v == 0 {
		t.Fatalf("remote_failures_total = %d", v)
	}
}

func TestSQLErrorsNeitherRetryNorTrip(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{MaxAttempts: 5, BreakerThreshold: 1, BreakerCooldown: time.Second})
	_, err := c.Query("SELECT * FROM missing")
	if err == nil || IsUnavailable(err) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after SQL error", got)
	}
}

func TestBreakerStopsRetryLoop(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{
		MaxAttempts: 10, BackoffBase: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	c.SetDown(true)
	if _, err := c.Query("SELECT id FROM t"); err == nil {
		t.Fatal("no error")
	}
	// The breaker tripped at the second failure; the loop must not have
	// burned all 10 attempts.
	if st := c.Stats(); st.Failures != 2 {
		t.Fatalf("failures = %d, want 2", st.Failures)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	run := func() time.Duration {
		clock := vclock.NewVirtual()
		c := newResilientLink(t, clock, Policy{
			MaxAttempts: 4, BackoffBase: 10 * time.Millisecond,
			BackoffMax: time.Second, JitterFrac: 0.5, Seed: 42,
		})
		c.SetFault(&failN{left: 100})
		start := clock.Now()
		if _, err := c.Query("SELECT id FROM t"); err == nil {
			t.Fatal("no error")
		}
		return clock.Now().Sub(start)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different backoff: %v vs %v", a, b)
	}
}

func TestConfigureDefaults(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, DefaultPolicy())
	if _, err := c.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if c.Breaker() == nil {
		t.Fatal("default policy should enable the breaker")
	}
}

// Ensure the wrapped exhaustion error remains classifiable and readable.
func TestExhaustionErrorMessage(t *testing.T) {
	clock := vclock.NewVirtual()
	c := newResilientLink(t, clock, Policy{MaxAttempts: 2, BackoffBase: time.Millisecond})
	c.SetDown(true)
	_, err := c.Query("SELECT id FROM t")
	if err == nil || !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v", err)
	}
	want := fmt.Sprintf("remote: %d attempt(s) failed", 2)
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("message = %q", got)
	}
}
