package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"relaxedcc/internal/fault"
)

// Link-level failures. Every error for which IsUnavailable is true means
// "the link did not deliver the query"; SQL errors from the back end are
// deliberately outside this class — they prove the link worked.
var (
	// ErrLinkDown is the injected hard failure (SetDown) and the error a
	// partitioned link surfaces.
	ErrLinkDown = errors.New("remote: link to back-end server is down")
	// ErrBreakerOpen is returned without touching the network while the
	// circuit breaker is open.
	ErrBreakerOpen = errors.New("remote: circuit breaker open")
	// ErrDeadlineExceeded is returned when the per-query deadline elapsed
	// before a reply (including time spent in retries and backoff).
	ErrDeadlineExceeded = errors.New("remote: deadline exceeded")
)

// IsUnavailable reports whether err means the back end was unreachable —
// the condition under which the paper's violation actions (serve stale,
// block, fail fast) apply. SQL-level errors return false: they must
// propagate to the client unchanged and must not trip the breaker.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrLinkDown) ||
		errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, fault.ErrInjected)
}

// Policy tunes the link's resilience: per-query deadline, bounded retries
// with exponential backoff and jitter, and the circuit breaker.
type Policy struct {
	// Deadline is the per-query wall budget across all attempts and
	// backoff waits; zero disables deadlines.
	Deadline time.Duration
	// MaxAttempts is the total number of tries per query (1 = no retry).
	MaxAttempts int
	// BackoffBase is the wait before the first retry; it doubles per
	// attempt up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// JitterFrac randomizes each backoff by ±frac/2 of its value (0..1),
	// decorrelating retry storms. Draws come from the policy's seeded
	// generator, so runs are reproducible.
	JitterFrac float64
	// BreakerThreshold is how many consecutive link failures trip the
	// breaker; zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting one
	// probe through (half-open). Callers wire it to the region's heartbeat
	// cadence so recovery is probed exactly as often as freshness is.
	BreakerCooldown time.Duration
	// Seed drives backoff jitter.
	Seed int64
}

// DefaultPolicy returns the resilience settings used by the chaos harness:
// three attempts inside a two-second deadline, 50ms base backoff doubling
// to one second with 20% jitter, and a breaker tripping after five
// consecutive failures with a one-second cooldown.
func DefaultPolicy() Policy {
	return Policy{
		Deadline:         2 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       time.Second,
		JitterFrac:       0.2,
		BreakerThreshold: 5,
		BreakerCooldown:  time.Second,
		Seed:             2004,
	}
}

// PassthroughPolicy returns a policy with no retries, no deadline and no
// breaker — the legacy single-shot link behavior.
func PassthroughPolicy() Policy { return Policy{MaxAttempts: 1} }

// backoff computes the wait before the retry following attempt (1-based),
// with exponential growth and jitter.
func (p Policy) backoff(attempt int, rng *rand.Rand) time.Duration {
	if p.BackoffBase <= 0 {
		return 0
	}
	d := p.BackoffBase << uint(attempt-1)
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.JitterFrac > 0 && rng != nil {
		span := float64(d) * p.JitterFrac
		d += time.Duration(rng.Float64()*span - span/2)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// BreakerState is the circuit breaker's condition, exported as the
// remote_breaker_state gauge (0 closed, 1 half-open, 2 open).
type BreakerState int32

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// Breaker is a clock-driven circuit breaker: it trips open after a run of
// consecutive link failures, refuses calls while open, and half-opens one
// probe per cooldown. All transitions are driven by the timestamps the
// caller passes in — there are no goroutines or timers, so breaker
// behavior is deterministic under a virtual clock.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	fails     int
	openedAt  time.Time
	probing   bool
	trips     int64
}

// NewBreaker creates a closed breaker. threshold is the consecutive-failure
// trip point; cooldown is the open→half-open delay.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed at time now. While open it
// returns false until the cooldown elapses, then lets exactly one probe
// through (half-open) until Record settles the probe's fate.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cooldown > 0 && !now.Before(b.openedAt.Add(b.cooldown)) {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record settles one allowed call: success closes the breaker and resets
// the failure run; failure extends the run and trips the breaker when the
// threshold is reached (a failed half-open probe re-opens immediately).
func (b *Breaker) Record(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		b.state = BreakerClosed
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.threshold > 0 && b.fails >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = now
		b.trips++
	}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
