package remote

import (
	"strings"
	"testing"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/vclock"
)

func newLink(t *testing.T) *Client {
	t.Helper()
	b := backend.New(vclock.NewVirtual())
	if _, err := b.Exec("CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, name VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("INSERT INTO t VALUES (1, 'aaaa'), (2, 'bb')"); err != nil {
		t.Fatal(err)
	}
	return NewClient(b)
}

func TestQueryShipsRows(t *testing.T) {
	c := newLink(t)
	rows, err := c.Query("SELECT id, name FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	st := c.Stats()
	if st.Queries != 1 || st.Rows != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Bytes: (8 + len+2) per row = (8+6) + (8+4) = 26.
	if st.Bytes != 26 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	c := newLink(t)
	if _, err := c.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("missing table accepted")
	}
	st := c.Stats()
	if st.Rows != 0 {
		t.Fatal("failed query counted rows")
	}
}

func TestFailureInjection(t *testing.T) {
	c := newLink(t)
	c.SetDown(true)
	_, err := c.Query("SELECT id FROM t")
	if err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("err = %v", err)
	}
	c.SetDown(false)
	if _, err := c.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	c := newLink(t)
	c.Query("SELECT id FROM t")
	c.ResetStats()
	if st := c.Stats(); st.Queries != 0 || st.Rows != 0 || st.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestQueryResultIncludesSchema(t *testing.T) {
	c := newLink(t)
	res, err := c.QueryResult("SELECT name FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema.Cols) != 1 || res.Schema.Cols[0].Name != "name" {
		t.Fatalf("schema = %v", res.Schema)
	}
}
