package cc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ids(xs ...int) []InstanceID {
	out := make([]InstanceID, len(xs))
	for i, x := range xs {
		out[i] = InstanceID(x)
	}
	return out
}

func TestDefaultConstraint(t *testing.T) {
	c := Default(ids(2, 1, 3))
	if len(c.Classes) != 1 {
		t.Fatalf("classes = %d", len(c.Classes))
	}
	cl := c.Classes[0]
	if cl.Bound != 0 {
		t.Fatal("default bound must be 0 (completely current)")
	}
	if len(cl.Set) != 3 || cl.Set[0] != 1 {
		t.Fatalf("set = %v", cl.Set)
	}
	if len(Default(nil).Classes) != 0 {
		t.Fatal("empty default")
	}
}

// TestNormalizeMergesOverlaps covers the paper's Q2 example (Figure 2.2):
// "5 min on (S, T)" with T expanded to {B, R} under "10 min on (B, R)"
// yields the single class "5 min (S, B, R)".
func TestNormalizeMergesOverlaps(t *testing.T) {
	// S=1, B=2, R=3. Outer clause: 5 min on (S,B,R) [T expanded];
	// inner clause: 10 min on (B,R).
	c := Normalize([]Requirement{
		{Bound: 5 * time.Minute, Set: ids(1, 2, 3)},
		{Bound: 10 * time.Minute, Set: ids(2, 3)},
	})
	if len(c.Classes) != 1 {
		t.Fatalf("classes = %+v", c.Classes)
	}
	if c.Classes[0].Bound != 5*time.Minute {
		t.Fatalf("bound = %v, want min(5,10)", c.Classes[0].Bound)
	}
	if len(c.Classes[0].Set) != 3 {
		t.Fatalf("set = %v", c.Classes[0].Set)
	}
}

func TestNormalizeTransitiveMerge(t *testing.T) {
	// {1,2} + {2,3} + {3,4} must all merge through shared members.
	c := Normalize([]Requirement{
		{Bound: 10 * time.Second, Set: ids(1, 2)},
		{Bound: 20 * time.Second, Set: ids(2, 3)},
		{Bound: 5 * time.Second, Set: ids(3, 4)},
	})
	if len(c.Classes) != 1 || c.Classes[0].Bound != 5*time.Second || len(c.Classes[0].Set) != 4 {
		t.Fatalf("constraint = %v", c)
	}
}

func TestNormalizeKeepsDisjointClasses(t *testing.T) {
	c := Normalize([]Requirement{
		{Bound: 10 * time.Minute, Set: ids(1)},
		{Bound: 30 * time.Minute, Set: ids(2)},
	})
	if len(c.Classes) != 2 {
		t.Fatalf("classes = %v", c)
	}
	b1, ok1 := c.BoundFor(1)
	b2, ok2 := c.BoundFor(2)
	if !ok1 || !ok2 || b1 != 10*time.Minute || b2 != 30*time.Minute {
		t.Fatalf("bounds = %v %v", b1, b2)
	}
	if _, ok := c.BoundFor(99); ok {
		t.Fatal("unconstrained instance reported a bound")
	}
}

func TestNormalizeDuplicatesAndEmpty(t *testing.T) {
	c := Normalize([]Requirement{
		{Bound: time.Second, Set: ids(1, 1, 2)},
		{Bound: time.Second, Set: nil},
	})
	if len(c.Classes) != 1 || len(c.Classes[0].Set) != 2 {
		t.Fatalf("constraint = %v", c)
	}
	if msg := c.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestNormalizeByColumns(t *testing.T) {
	// Merging a BY-grouped class with an ungrouped one drops the grouping
	// (ungrouped is stricter).
	c := Normalize([]Requirement{
		{Bound: time.Minute, Set: ids(1, 2), By: []string{"R.isbn"}},
		{Bound: time.Minute, Set: ids(2, 3)},
	})
	if len(c.Classes) != 1 || c.Classes[0].By != nil {
		t.Fatalf("constraint = %+v", c.Classes)
	}
	// Merging two grouped classes keeps the common columns.
	c = Normalize([]Requirement{
		{Bound: time.Minute, Set: ids(1, 2), By: []string{"a", "b"}},
		{Bound: time.Minute, Set: ids(2), By: []string{"b", "c"}},
	})
	if len(c.Classes[0].By) != 1 || c.Classes[0].By[0] != "b" {
		t.Fatalf("merged BY = %v", c.Classes[0].By)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	reqs := []Requirement{
		{Bound: 10 * time.Second, Set: ids(1, 2)},
		{Bound: 20 * time.Second, Set: ids(3)},
	}
	c1 := Normalize(reqs)
	c2 := Normalize(c1.Classes)
	if c1.String() != c2.String() {
		t.Fatalf("not idempotent: %v vs %v", c1, c2)
	}
}

// TestQuickNormalize property-tests normalization: result is always disjoint
// and every pair of instances sharing an input class shares an output class
// whose bound is <= every input bound mentioning either instance's class.
func TestQuickNormalize(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nReq := 1 + rng.Intn(6)
		reqs := make([]Requirement, nReq)
		for i := range reqs {
			n := 1 + rng.Intn(4)
			set := make([]InstanceID, n)
			for j := range set {
				set[j] = InstanceID(rng.Intn(8))
			}
			reqs[i] = Requirement{Bound: time.Duration(rng.Intn(100)) * time.Second, Set: set}
		}
		c := Normalize(reqs)
		if c.Validate() != "" {
			return false
		}
		// Same input class => same output class, with bound <= input bound.
		for _, r := range reqs {
			if len(r.Set) == 0 {
				continue
			}
			cl := c.ClassOf(r.Set[0])
			if cl == nil {
				return false
			}
			for _, id := range r.Set {
				if c.ClassOf(id) != cl {
					return false
				}
			}
			if cl.Bound > r.Bound {
				return false
			}
		}
		// Every output bound equals some input bound (min is achieved).
		for _, cl := range c.Classes {
			found := false
			for _, r := range reqs {
				if r.Bound == cl.Bound {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverScanAndJoin(t *testing.T) {
	a := DeliverScan(1, 10)
	b := DeliverScan(1, 11)
	c := DeliverScan(2, 12)
	// Same region merges.
	ab := Join(a, b)
	if len(ab.Groups) != 1 || len(ab.Groups[0].Set) != 2 {
		t.Fatalf("same-region join = %v", ab)
	}
	// Different regions stay separate.
	abc := Join(ab, c)
	if len(abc.Groups) != 2 {
		t.Fatalf("cross-region join = %v", abc)
	}
	if abc.Conflicting() {
		t.Fatal("disjoint groups must not conflict")
	}
}

// TestConflictingProperty covers the paper's example: joining two projection
// views of the same table T from different regions delivers {<R1,T>,<R2,T>},
// which is conflicting.
func TestConflictingProperty(t *testing.T) {
	v1 := DeliverScan(1, 7) // projection view of T in region 1
	v2 := DeliverScan(2, 7) // another projection view of T in region 2
	j := Join(v1, v2)
	if !j.Conflicting() {
		t.Fatalf("property %v must conflict", j)
	}
	if j.Satisfies(Constraint{}) {
		t.Fatal("conflicting property cannot satisfy anything")
	}
	if !j.Violates(Constraint{}) {
		t.Fatal("conflicting property must violate")
	}
}

func TestSatisfactionRule(t *testing.T) {
	// Required: {1,2} consistent within 10 min.
	c := Normalize([]Requirement{{Bound: 10 * time.Minute, Set: ids(1, 2)}})
	// Delivered: both from region 1 -> satisfies.
	d := Join(DeliverScan(1, 1), DeliverScan(1, 2))
	if !d.Satisfies(c) {
		t.Fatalf("%v should satisfy %v", d, c)
	}
	// Delivered: from different regions -> does not satisfy.
	d2 := Join(DeliverScan(1, 1), DeliverScan(2, 2))
	if d2.Satisfies(c) {
		t.Fatalf("%v should not satisfy %v", d2, c)
	}
	// Relaxed constraint with separate classes: satisfied by either.
	c2 := Normalize([]Requirement{
		{Bound: 10 * time.Minute, Set: ids(1)},
		{Bound: 30 * time.Minute, Set: ids(2)},
	})
	if !d2.Satisfies(c2) {
		t.Fatalf("%v should satisfy %v", d2, c2)
	}
}

func TestViolationRuleOnPartialPlans(t *testing.T) {
	// Required classes {1} and {2} (different snapshots allowed); a
	// delivered group spanning both intersects two required classes ->
	// violation (can never be separated again).
	c := Normalize([]Requirement{
		{Bound: time.Minute, Set: ids(1)},
		{Bound: time.Minute, Set: ids(2)},
	})
	d := Join(DeliverScan(3, 1), DeliverScan(3, 2))
	if !d.Violates(c) {
		t.Fatalf("%v should violate %v", d, c)
	}
	// A partial plan covering only part of one class does NOT violate.
	c2 := Normalize([]Requirement{{Bound: time.Minute, Set: ids(1, 2)}})
	partial := DeliverScan(1, 1)
	if partial.Violates(c2) {
		t.Fatal("partial coverage must not violate")
	}
	// ... but also does not (yet) satisfy.
	if partial.Satisfies(c2) {
		t.Fatal("partial coverage must not satisfy")
	}
}

func TestSwitchUnionProperty(t *testing.T) {
	// Child 1 (local): instances 1,2 from region 1 (consistent).
	// Child 2 (remote): instances 1,2 from master region 0 (consistent).
	local := DeliverScan(1, 1, 2)
	remote := DeliverScan(0, 1, 2)
	su := SwitchUnion(local, remote)
	if len(su.Groups) != 1 || len(su.Groups[0].Set) != 2 {
		t.Fatalf("switchunion = %v", su)
	}
	if su.Groups[0].Region != RegionDynamic {
		t.Fatalf("region should be dynamic, got %d", su.Groups[0].Region)
	}
	// Instances consistent in one child but not the other are not
	// consistent in the result.
	child1 := Join(DeliverScan(1, 1), DeliverScan(1, 2)) // together
	child2 := Join(DeliverScan(0, 1), DeliverScan(2, 2)) // apart
	su2 := SwitchUnion(child1, child2)
	if len(su2.Groups) != 2 {
		t.Fatalf("meet = %v", su2)
	}
	// Region agreement is preserved.
	su3 := SwitchUnion(DeliverScan(1, 5), DeliverScan(1, 5))
	if su3.Groups[0].Region != 1 {
		t.Fatalf("agreeing regions lost: %v", su3)
	}
}

func TestSwitchUnionEmpty(t *testing.T) {
	if got := SwitchUnion(); len(got.Groups) != 0 {
		t.Fatal("empty switchunion")
	}
}

func TestLocalProbability(t *testing.T) {
	d := 5 * time.Second
	f := 100 * time.Second
	cases := []struct {
		b    time.Duration
		want float64
	}{
		{0, 0},
		{5 * time.Second, 0},     // b == d
		{55 * time.Second, 0.5},  // (55-5)/100
		{105 * time.Second, 1},   // b == d+f
		{200 * time.Second, 1},   // beyond
		{4 * time.Second, 0},     // below delay
		{30 * time.Second, 0.25}, // (30-5)/100
	}
	for _, c := range cases {
		if got := LocalProbability(c.b, d, f); !close(got, c.want) {
			t.Errorf("p(b=%v) = %v, want %v", c.b, got, c.want)
		}
	}
	// Continuous propagation: f = 0.
	if LocalProbability(6*time.Second, 5*time.Second, 0) != 1 {
		t.Fatal("continuous, b > d")
	}
	if LocalProbability(5*time.Second, 5*time.Second, 0) != 0 {
		t.Fatal("continuous, b <= d")
	}
}

// TestQuickLocalProbability checks 0 <= p <= 1 and monotonicity in b.
func TestQuickLocalProbability(t *testing.T) {
	check := func(bMs, dMs, fMs uint16) bool {
		b := time.Duration(bMs) * time.Millisecond
		d := time.Duration(dMs) * time.Millisecond
		f := time.Duration(fMs) * time.Millisecond
		p := LocalProbability(b, d, f)
		if p < 0 || p > 1 {
			return false
		}
		p2 := LocalProbability(b+time.Second, d, f)
		return p2 >= p
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	c := Normalize([]Requirement{{Bound: time.Minute, Set: ids(1, 2), By: []string{"B.isbn"}}})
	if got := c.String(); got != "[1m0s ON {1,2} BY B.isbn]" {
		t.Fatalf("Constraint.String = %q", got)
	}
	if got := (Constraint{}).String(); got != "[unconstrained]" {
		t.Fatalf("empty = %q", got)
	}
	d := Join(DeliverScan(1, 1), DeliverScan(0, 2))
	if got := d.String(); got != "{<R1, {1}>, <R0, {2}>}" {
		t.Fatalf("Delivered.String = %q", got)
	}
	dyn := SwitchUnion(DeliverScan(1, 1), DeliverScan(0, 1))
	if got := dyn.String(); got != "{<dyn, {1}>}" {
		t.Fatalf("dynamic group = %q", got)
	}
}

func close(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9
}
