// Package cc implements the paper's currency-and-consistency constraint
// model (Sections 2, 3.2 and the appendix):
//
//   - Requirement: one (bound, consistency class, grouping columns) triple
//     over query input operands ("instances").
//   - Normalize: the Section 3.2.1 algorithm — union the triples from all
//     currency clauses, expand views to base tables (done by the caller
//     during name resolution), and repeatedly merge overlapping classes
//     taking the minimum bound, until all classes are disjoint.
//   - Constraint: the normalized form, used as the *required consistency
//     property* of a plan.
//   - Delivered: the *delivered consistency property* of a (partial) plan —
//     a set of (region, instance-set) groups — with the paper's conflict,
//     satisfaction and violation rules, and the property algebra for scans,
//     joins and SwitchUnion (Section 3.2.2).
//
// Instances are small integer ids assigned by the optimizer front end, one
// per base-table occurrence in the query; the same table referenced twice
// yields two instances.
package cc

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// InstanceID identifies one base-table occurrence in a query.
type InstanceID int

// RegionDynamic marks a delivered group whose region is decided at run time
// (the output of a SwitchUnion whose branches disagree).
const RegionDynamic = -1

// Requirement is one currency-clause triple after name resolution: the
// instances in Set must be mutually consistent (same database snapshot) and
// no staler than Bound. If By is non-empty, the consistency requirement is
// relaxed to per-group consistency: rows agreeing on the By columns must
// come from one snapshot, but different groups may come from different
// snapshots (Section 2.1, E3/E4).
type Requirement struct {
	Bound time.Duration
	Set   []InstanceID
	By    []string // qualified column names, e.g. "R.isbn"; empty = whole class
}

// Constraint is a normalized C&C constraint: disjoint classes over base-
// table instances. The zero value means "no constraint" (every plan
// satisfies it); note this differs from the *default* constraint a query
// without a currency clause gets, which is the tightest one (see Default).
type Constraint struct {
	Classes []Requirement
}

// Default returns the paper's default for queries without a currency
// clause: all instances mutually consistent and completely current
// (bound 0), which forces the back-end and preserves traditional semantics.
func Default(instances []InstanceID) Constraint {
	if len(instances) == 0 {
		return Constraint{}
	}
	set := append([]InstanceID(nil), instances...)
	sortIDs(set)
	return Constraint{Classes: []Requirement{{Bound: 0, Set: set}}}
}

// Normalize merges requirements until all classes are disjoint, taking the
// minimum bound when classes merge (if two classes share an instance, all
// their members must come from one snapshot satisfying the tighter bound).
// Grouping columns merge by intersection: the merged class must honor the
// stricter (coarser) grouping, and a class with no grouping (strictest) wins.
func Normalize(reqs []Requirement) Constraint {
	classes := make([]Requirement, 0, len(reqs))
	for _, r := range reqs {
		if len(r.Set) == 0 {
			continue
		}
		cp := Requirement{Bound: r.Bound, Set: dedupIDs(r.Set), By: append([]string(nil), r.By...)}
		classes = append(classes, cp)
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(classes); i++ {
			for j := i + 1; j < len(classes); j++ {
				if intersects(classes[i].Set, classes[j].Set) {
					classes[i] = mergeReqs(classes[i], classes[j])
					classes = append(classes[:j], classes[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		if len(classes[i].Set) == 0 || len(classes[j].Set) == 0 {
			return len(classes[i].Set) > len(classes[j].Set)
		}
		return classes[i].Set[0] < classes[j].Set[0]
	})
	return Constraint{Classes: classes}
}

func mergeReqs(a, b Requirement) Requirement {
	out := Requirement{Bound: a.Bound}
	if b.Bound < a.Bound {
		out.Bound = b.Bound
	}
	out.Set = dedupIDs(append(append([]InstanceID(nil), a.Set...), b.Set...))
	// Grouping columns: empty By is the strictest requirement (one snapshot
	// for the whole class); otherwise the merged class may only keep the
	// grouping columns demanded by both sides.
	if len(a.By) == 0 || len(b.By) == 0 {
		out.By = nil
	} else {
		out.By = intersectStrings(a.By, b.By)
	}
	return out
}

// ClassOf returns the class containing the instance, or nil.
func (c Constraint) ClassOf(id InstanceID) *Requirement {
	for i := range c.Classes {
		if containsID(c.Classes[i].Set, id) {
			return &c.Classes[i]
		}
	}
	return nil
}

// BoundFor returns the currency bound applying to the instance, and whether
// any class covers it. Instances not mentioned by any class are
// unconstrained.
func (c Constraint) BoundFor(id InstanceID) (time.Duration, bool) {
	if cl := c.ClassOf(id); cl != nil {
		return cl.Bound, true
	}
	return 0, false
}

// Instances returns all constrained instance ids, sorted.
func (c Constraint) Instances() []InstanceID {
	var out []InstanceID
	for _, cl := range c.Classes {
		out = append(out, cl.Set...)
	}
	return dedupIDs(out)
}

// String renders the constraint, e.g. "[10m0s ON {1,2}; 30m0s ON {3}]".
func (c Constraint) String() string {
	if len(c.Classes) == 0 {
		return "[unconstrained]"
	}
	parts := make([]string, len(c.Classes))
	for i, cl := range c.Classes {
		s := fmt.Sprintf("%v ON %s", cl.Bound, idSet(cl.Set))
		if len(cl.By) > 0 {
			s += " BY " + strings.Join(cl.By, ",")
		}
		parts[i] = s
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

// Validate checks internal invariants of a normalized constraint (disjoint,
// non-empty classes). It returns "" when valid; tests use it as a property.
func (c Constraint) Validate() string {
	seen := map[InstanceID]bool{}
	for _, cl := range c.Classes {
		if len(cl.Set) == 0 {
			return "empty class"
		}
		for _, id := range cl.Set {
			if seen[id] {
				return fmt.Sprintf("instance %d in two classes", id)
			}
			seen[id] = true
		}
		if cl.Bound < 0 {
			return "negative bound"
		}
	}
	return ""
}

// Group is one tuple of a delivered consistency property: the instances in
// Set are mutually consistent and belong to currency region Region
// (RegionDynamic if the region is only known at run time).
type Group struct {
	Region int
	Set    []InstanceID
}

// Delivered is the delivered consistency property of a (partial) plan.
type Delivered struct {
	Groups []Group
}

// DeliverScan returns the property of a scan leaf: all the base-table
// instances it produces (one for a base table; the view's base instances for
// a materialized-view scan) belong to a single region.
func DeliverScan(region int, ids ...InstanceID) Delivered {
	set := dedupIDs(ids)
	return Delivered{Groups: []Group{{Region: region, Set: set}}}
}

// Join combines the delivered properties of a join's two children: groups
// from the same region merge (they reflect the same snapshot); other groups
// pass through (Section 3.2.2, join operators).
func Join(a, b Delivered) Delivered {
	out := Delivered{}
	byRegion := map[int]*Group{}
	add := func(g Group) {
		if g.Region != RegionDynamic {
			if ex, ok := byRegion[g.Region]; ok {
				ex.Set = dedupIDs(append(ex.Set, g.Set...))
				return
			}
		}
		cp := Group{Region: g.Region, Set: append([]InstanceID(nil), g.Set...)}
		out.Groups = append(out.Groups, cp)
		if g.Region != RegionDynamic {
			byRegion[g.Region] = &out.Groups[len(out.Groups)-1]
		}
	}
	for _, g := range a.Groups {
		add(g)
	}
	for _, g := range b.Groups {
		add(g)
	}
	sortGroups(out.Groups)
	return out
}

// SwitchUnion combines the delivered properties of a SwitchUnion's children:
// two instances can only be guaranteed mutually consistent if they are
// consistent in every child, because any child may be chosen at run time.
// The result is the meet (common refinement) of the children's groupings; a
// resulting group keeps a concrete region only if all children agree on it.
func SwitchUnion(children ...Delivered) Delivered {
	if len(children) == 0 {
		return Delivered{}
	}
	// Instances present in every child.
	counts := map[InstanceID]int{}
	for _, ch := range children {
		for _, id := range instancesOf(ch) {
			counts[id]++
		}
	}
	var common []InstanceID
	for id, n := range counts {
		if n == len(children) {
			common = append(common, id)
		}
	}
	sortIDs(common)
	// Signature of an instance: the sequence of (group index, region) per
	// child. Two instances share an output group iff signatures match on
	// group indexes; the region is kept if all children agree.
	bySig := map[string][]InstanceID{}
	regionFor := map[string]int{}
	for _, id := range common {
		var b strings.Builder
		region := -2 // unset
		agree := true
		for ci, ch := range children {
			gi, g := groupOf(ch, id)
			fmt.Fprintf(&b, "%d:%d;", ci, gi)
			if region == -2 {
				region = g.Region
			} else if region != g.Region {
				agree = false
			}
		}
		key := b.String()
		bySig[key] = append(bySig[key], id)
		if agree && region >= 0 {
			regionFor[key] = region
		} else {
			regionFor[key] = RegionDynamic
		}
	}
	out := Delivered{}
	for key, ids := range bySig {
		sortIDs(ids)
		out.Groups = append(out.Groups, Group{Region: regionFor[key], Set: ids})
	}
	sortGroups(out.Groups)
	return out
}

func instancesOf(d Delivered) []InstanceID {
	var out []InstanceID
	for _, g := range d.Groups {
		out = append(out, g.Set...)
	}
	return dedupIDs(out)
}

func groupOf(d Delivered, id InstanceID) (int, Group) {
	for i, g := range d.Groups {
		if containsID(g.Set, id) {
			return i, g
		}
	}
	return -1, Group{Region: RegionDynamic}
}

// Conflicting implements the paper's conflicting-property rule: the property
// is conflicting if some instance appears in two groups (its columns would
// originate from different snapshots — e.g. joining two projection views of
// one table from different regions).
func (d Delivered) Conflicting() bool {
	seen := map[InstanceID]bool{}
	for _, g := range d.Groups {
		for _, id := range g.Set {
			if seen[id] {
				return true
			}
			seen[id] = true
		}
	}
	return false
}

// Satisfies implements the consistency satisfaction rule: d satisfies c iff
// d is not conflicting and every required class is contained in some
// delivered group. Only meaningful for complete plans.
func (d Delivered) Satisfies(c Constraint) bool {
	if d.Conflicting() {
		return false
	}
	for _, cl := range c.Classes {
		ok := false
		for _, g := range d.Groups {
			if subsetIDs(cl.Set, g.Set) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Violates implements the consistency violation rule for partial plans: d
// already violates c if it is conflicting, or if some delivered group
// intersects more than one required class (those instances could never be
// brought back into one snapshot by operators above).
func (d Delivered) Violates(c Constraint) bool {
	if d.Conflicting() {
		return true
	}
	for _, g := range d.Groups {
		hits := 0
		for _, cl := range c.Classes {
			if intersects(g.Set, cl.Set) {
				hits++
			}
		}
		if hits > 1 {
			return true
		}
	}
	return false
}

// String renders the delivered property.
func (d Delivered) String() string {
	if len(d.Groups) == 0 {
		return "{}"
	}
	parts := make([]string, len(d.Groups))
	for i, g := range d.Groups {
		region := "dyn"
		if g.Region != RegionDynamic {
			region = fmt.Sprintf("R%d", g.Region)
		}
		parts[i] = fmt.Sprintf("<%s, %s>", region, idSet(g.Set))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// LocalProbability is the paper's formula (1) from Section 3.2.4: the
// probability that a local view in a region with propagation interval f and
// delay d satisfies currency bound b, assuming query start times uniformly
// distributed over the propagation cycle.
//
//	p = 0            if b-d <= 0
//	p = (b-d)/f      if 0 < b-d <= f
//	p = 1            if b-d > f
//
// Continuous propagation is modeled by f = 0: p = 1 iff b > d.
func LocalProbability(b, d, f time.Duration) float64 {
	slack := b - d
	if slack <= 0 {
		return 0
	}
	if f <= 0 || slack > f {
		return 1
	}
	return float64(slack) / float64(f)
}

// ---- small set helpers ----

func sortIDs(ids []InstanceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func dedupIDs(ids []InstanceID) []InstanceID {
	if len(ids) == 0 {
		return nil
	}
	cp := append([]InstanceID(nil), ids...)
	sortIDs(cp)
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func containsID(ids []InstanceID, id InstanceID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func intersects(a, b []InstanceID) bool {
	for _, x := range a {
		if containsID(b, x) {
			return true
		}
	}
	return false
}

func subsetIDs(a, b []InstanceID) bool {
	for _, x := range a {
		if !containsID(b, x) {
			return false
		}
	}
	return true
}

func intersectStrings(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

func idSet(ids []InstanceID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool {
		if len(gs[i].Set) > 0 && len(gs[j].Set) > 0 && gs[i].Set[0] != gs[j].Set[0] {
			return gs[i].Set[0] < gs[j].Set[0]
		}
		return gs[i].Region < gs[j].Region
	})
}
