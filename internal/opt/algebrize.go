package opt

import (
	"fmt"
	"strings"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/cc"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
)

// Algebrize turns a bound SELECT into the flat logical Query form: names
// resolved, SPJ derived tables flattened, EXISTS/IN subqueries rewritten to
// semi/anti join leaves, predicates classified, and all currency clauses
// normalized into one required consistency constraint.
func Algebrize(sel *sqlparser.SelectStmt, cat *catalog.Catalog) (*Query, error) {
	a := &algebrizer{cat: cat, bindings: map[string]cc.InstanceID{}}
	q := &Query{Stmt: sel}
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("opt: SELECT without FROM is handled by the trivial planner")
	}
	var reqs []cc.Requirement
	for _, tr := range sel.From {
		if err := a.addTableRef(q, tr, &reqs); err != nil {
			return nil, err
		}
	}
	// Classify WHERE conjuncts.
	if sel.Where != nil {
		if err := a.addPredicate(q, sel.Where, &reqs); err != nil {
			return nil, err
		}
	}
	// Currency clause of the outer block.
	if sel.Currency != nil {
		q.HasCurrencyClause = true
		if err := a.resolveCurrency(sel.Currency, &reqs); err != nil {
			return nil, err
		}
	}
	if err := a.finishing(q, sel); err != nil {
		return nil, err
	}
	a.collectNeededColumns(q)
	if q.HasCurrencyClause {
		// Instances not mentioned in any clause default to "completely
		// current" (their own bound-0 class).
		mentioned := map[cc.InstanceID]bool{}
		for _, r := range reqs {
			for _, id := range r.Set {
				mentioned[id] = true
			}
		}
		for _, l := range q.Leaves {
			if !mentioned[l.ID] {
				reqs = append(reqs, cc.Requirement{Bound: 0, Set: []cc.InstanceID{l.ID}})
			}
		}
		q.Constraint = cc.Normalize(reqs)
	} else {
		// The paper's default: all inputs mutually consistent and current.
		var ids []cc.InstanceID
		for _, l := range q.Leaves {
			ids = append(ids, l.ID)
		}
		q.Constraint = cc.Default(ids)
	}
	return q, nil
}

type algebrizer struct {
	cat       *catalog.Catalog
	nextID    cc.InstanceID
	bindings  map[string]cc.InstanceID
	leaves    []*Leaf
	aliasMaps []aliasMap
}

func (a *algebrizer) newLeaf(q *Query, table *catalog.Table, binding string, kind exec.JoinKind) (*Leaf, error) {
	if _, dup := a.bindings[binding]; dup {
		return nil, fmt.Errorf("opt: duplicate table binding %q", binding)
	}
	a.nextID++
	leaf := &Leaf{ID: a.nextID, Table: table, Binding: binding, Join: kind}
	a.bindings[binding] = leaf.ID
	a.leaves = append(a.leaves, leaf)
	q.Leaves = append(q.Leaves, leaf)
	return leaf, nil
}

// addTableRef flattens one FROM entry into leaves and join predicates.
func (a *algebrizer) addTableRef(q *Query, tr sqlparser.TableRef, reqs *[]cc.Requirement) error {
	switch tr := tr.(type) {
	case *sqlparser.TableName:
		tbl := a.cat.Table(tr.Name)
		if tbl == nil {
			return fmt.Errorf("opt: unknown table %s", tr.Name)
		}
		_, err := a.newLeaf(q, tbl, tr.Binding(), exec.JoinInner)
		return err
	case *sqlparser.JoinRef:
		if err := a.addTableRef(q, tr.Left, reqs); err != nil {
			return err
		}
		if err := a.addTableRef(q, tr.Right, reqs); err != nil {
			return err
		}
		return a.addPredicate(q, tr.On, reqs)
	case *sqlparser.SubqueryRef:
		return a.flattenDerived(q, tr, reqs)
	default:
		return fmt.Errorf("opt: unsupported table reference %T", tr)
	}
}

// flattenDerived inlines an SPJ derived table (the paper's Q2 pattern, e.g.
// an expanded view). The derived table's output columns must be plain column
// references; the outer query's references through the derived alias are
// rewritten to the underlying bindings.
func (a *algebrizer) flattenDerived(q *Query, sub *sqlparser.SubqueryRef, reqs *[]cc.Requirement) error {
	s := sub.Select
	if len(s.GroupBy) > 0 || s.Having != nil || s.Top > 0 || s.Distinct || len(s.OrderBy) > 0 {
		return fmt.Errorf("opt: derived table %s is not a simple SPJ block", sub.Alias)
	}
	// Remember which leaves belong to the subquery for alias mapping.
	inner := &Query{Stmt: s}
	for _, tr := range s.From {
		if err := a.addTableRef(inner, tr, reqs); err != nil {
			return err
		}
	}
	// Column map: derived alias output name -> underlying qualified ref.
	colMap := map[string]*sqlparser.ColumnRef{}
	for _, item := range s.Items {
		if item.Star {
			for _, l := range inner.Leaves {
				for _, c := range l.Table.Columns {
					if item.StarTable == "" || item.StarTable == l.Binding {
						if _, dup := colMap[strings.ToLower(c.Name)]; !dup {
							colMap[strings.ToLower(c.Name)] = &sqlparser.ColumnRef{Table: l.Binding, Column: c.Name}
						}
					}
				}
			}
			continue
		}
		ref, ok := item.Expr.(*sqlparser.ColumnRef)
		if !ok {
			return fmt.Errorf("opt: derived table %s projects a computed column; not flattenable", sub.Alias)
		}
		resolved, err := a.resolveRefIn(inner.Leaves, ref)
		if err != nil {
			return err
		}
		name := item.Alias
		if name == "" {
			name = ref.Column
		}
		colMap[strings.ToLower(name)] = resolved
	}
	a.aliasMaps = append(a.aliasMaps, aliasMap{alias: sub.Alias, cols: colMap, leaves: inner.Leaves})
	// Merge inner structure into the outer query.
	q.Leaves = append(q.Leaves, inner.Leaves...)
	q.Joins = append(q.Joins, inner.Joins...)
	q.Residual = append(q.Residual, inner.Residual...)
	if s.Where != nil {
		if err := a.addPredicate(q, s.Where, reqs); err != nil {
			return err
		}
	}
	if s.Currency != nil {
		q.HasCurrencyClause = true
		if err := a.resolveCurrency(s.Currency, reqs); err != nil {
			return err
		}
	}
	return nil
}

// aliasMap translates references through a flattened derived table.
type aliasMap struct {
	alias  string
	cols   map[string]*sqlparser.ColumnRef
	leaves []*Leaf
}

// addPredicate splits a boolean expression into conjuncts and classifies
// each one.
func (a *algebrizer) addPredicate(q *Query, e sqlparser.Expr, reqs *[]cc.Requirement) error {
	for _, conj := range conjuncts(e) {
		if err := a.classify(q, conj, reqs); err != nil {
			return err
		}
	}
	return nil
}

func conjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == sqlparser.OpAnd {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []sqlparser.Expr{e}
}

func (a *algebrizer) classify(q *Query, conj sqlparser.Expr, reqs *[]cc.Requirement) error {
	// EXISTS / NOT EXISTS -> semi/anti leaf.
	switch e := conj.(type) {
	case *sqlparser.ExistsExpr:
		return a.rewriteExists(q, e.Subquery, e.Not, nil, reqs)
	case *sqlparser.NotExpr:
		if ex, ok := e.Inner.(*sqlparser.ExistsExpr); ok {
			return a.rewriteExists(q, ex.Subquery, !ex.Not, nil, reqs)
		}
	case *sqlparser.InExpr:
		if e.Subquery != nil {
			return a.rewriteExists(q, e.Subquery, e.Not, e.Expr, reqs)
		}
	}
	// Resolve references; determine which leaves the conjunct touches.
	resolved, leaves, err := a.resolveExpr(conj)
	if err != nil {
		return err
	}
	switch len(leaves) {
	case 0:
		q.Residual = append(q.Residual, resolved)
	case 1:
		leaf := q.Leaf(leaves[0])
		leaf.Preds = append(leaf.Preds, resolved)
	case 2:
		if l, r, lc, rc, ok := equiJoinCols(resolved, q, leaves); ok {
			q.Joins = append(q.Joins, JoinPred{LeftLeaf: l, RightLeaf: r, LeftCol: lc, RightCol: rc, Expr: resolved})
			return nil
		}
		q.Residual = append(q.Residual, resolved)
	default:
		q.Residual = append(q.Residual, resolved)
	}
	return nil
}

// equiJoinCols recognizes "A.x = B.y" between two distinct leaves.
func equiJoinCols(e sqlparser.Expr, q *Query, leaves []cc.InstanceID) (l, r cc.InstanceID, lc, rc string, ok bool) {
	be, isBin := e.(*sqlparser.BinaryExpr)
	if !isBin || be.Op != sqlparser.OpEQ {
		return 0, 0, "", "", false
	}
	lref, okL := be.Left.(*sqlparser.ColumnRef)
	rref, okR := be.Right.(*sqlparser.ColumnRef)
	if !okL || !okR {
		return 0, 0, "", "", false
	}
	var lid, rid cc.InstanceID
	for _, leaf := range q.Leaves {
		if leaf.Binding == lref.Table {
			lid = leaf.ID
		}
		if leaf.Binding == rref.Table {
			rid = leaf.ID
		}
	}
	if lid == 0 || rid == 0 || lid == rid {
		return 0, 0, "", "", false
	}
	return lid, rid, lref.Column, rref.Column, true
}

// rewriteExists turns a single-table EXISTS/IN subquery into a semi or anti
// join leaf (the paper's Q3 pattern). inExpr, when non-nil, is the left side
// of an IN and joins with the subquery's single output column.
func (a *algebrizer) rewriteExists(q *Query, sub *sqlparser.SelectStmt, anti bool, inExpr sqlparser.Expr, reqs *[]cc.Requirement) error {
	if len(sub.From) != 1 {
		return fmt.Errorf("opt: EXISTS/IN subquery must reference exactly one table")
	}
	tn, ok := sub.From[0].(*sqlparser.TableName)
	if !ok {
		return fmt.Errorf("opt: EXISTS/IN subquery FROM must be a base table")
	}
	if len(sub.GroupBy) > 0 || sub.Having != nil || sub.Top > 0 {
		return fmt.Errorf("opt: EXISTS/IN subquery must be a simple block")
	}
	tbl := a.cat.Table(tn.Name)
	if tbl == nil {
		return fmt.Errorf("opt: unknown table %s", tn.Name)
	}
	kind := exec.JoinSemi
	if anti {
		kind = exec.JoinAnti
	}
	leaf, err := a.newLeaf(q, tbl, tn.Binding(), kind)
	if err != nil {
		return err
	}
	if sub.Where != nil {
		if err := a.addPredicate(q, sub.Where, reqs); err != nil {
			return err
		}
	}
	if inExpr != nil {
		if len(sub.Items) != 1 || sub.Items[0].Star {
			return fmt.Errorf("opt: IN subquery must select exactly one column")
		}
		subCol, ok := sub.Items[0].Expr.(*sqlparser.ColumnRef)
		if !ok {
			return fmt.Errorf("opt: IN subquery must select a plain column")
		}
		eq := &sqlparser.BinaryExpr{Op: sqlparser.OpEQ, Left: inExpr, Right: subCol}
		if err := a.classify(q, eq, reqs); err != nil {
			return err
		}
	}
	if sub.Currency != nil {
		q.HasCurrencyClause = true
		if err := a.resolveCurrency(sub.Currency, reqs); err != nil {
			return err
		}
	}
	_ = leaf
	return nil
}

// resolveCurrency maps a currency clause's table names to instance ids. The
// clause follows WHERE-style scoping: it may reference tables from the
// current or outer blocks, all of which are in a.bindings by the time the
// clause is resolved.
func (a *algebrizer) resolveCurrency(clause *sqlparser.CurrencyClause, reqs *[]cc.Requirement) error {
	for _, triple := range clause.Triples {
		r := cc.Requirement{Bound: triple.Bound}
		for _, name := range triple.Tables {
			if id, ok := a.bindings[name]; ok {
				r.Set = append(r.Set, id)
				continue
			}
			// A flattened derived table's alias expands to all its
			// underlying base-table instances — the paper's view expansion
			// step in constraint normalization (Section 3.2.1).
			expanded := false
			for _, am := range a.aliasMaps {
				if am.alias == name {
					for _, l := range am.leaves {
						r.Set = append(r.Set, l.ID)
					}
					expanded = true
					break
				}
			}
			if !expanded {
				return fmt.Errorf("opt: currency clause references unknown table %s", name)
			}
		}
		for _, by := range triple.By {
			ref, err := a.resolveRefIn(a.leaves, &by)
			if err != nil {
				return fmt.Errorf("opt: currency clause BY column: %w", err)
			}
			r.By = append(r.By, ref.SQL())
		}
		*reqs = append(*reqs, r)
	}
	return nil
}

// resolveExpr rewrites column references in e to fully qualified form and
// returns the distinct leaves it touches.
func (a *algebrizer) resolveExpr(e sqlparser.Expr) (sqlparser.Expr, []cc.InstanceID, error) {
	touched := map[cc.InstanceID]bool{}
	out, err := a.rewriteExpr(e, touched)
	if err != nil {
		return nil, nil, err
	}
	var ids []cc.InstanceID
	for id := range touched {
		ids = append(ids, id)
	}
	sortInstanceIDs(ids)
	return out, ids, nil
}

func (a *algebrizer) rewriteExpr(e sqlparser.Expr, touched map[cc.InstanceID]bool) (sqlparser.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sqlparser.Literal, *sqlparser.ParamRef:
		return e, nil
	case *sqlparser.ColumnRef:
		ref, err := a.resolveRefIn(a.leaves, e)
		if err != nil {
			return nil, err
		}
		if id, ok := a.bindings[ref.Table]; ok {
			touched[id] = true
		}
		return ref, nil
	case *sqlparser.BinaryExpr:
		l, err := a.rewriteExpr(e.Left, touched)
		if err != nil {
			return nil, err
		}
		r, err := a.rewriteExpr(e.Right, touched)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: e.Op, Left: l, Right: r}, nil
	case *sqlparser.NotExpr:
		in, err := a.rewriteExpr(e.Inner, touched)
		if err != nil {
			return nil, err
		}
		return &sqlparser.NotExpr{Inner: in}, nil
	case *sqlparser.NegExpr:
		in, err := a.rewriteExpr(e.Inner, touched)
		if err != nil {
			return nil, err
		}
		return &sqlparser.NegExpr{Inner: in}, nil
	case *sqlparser.BetweenExpr:
		x, err := a.rewriteExpr(e.Expr, touched)
		if err != nil {
			return nil, err
		}
		lo, err := a.rewriteExpr(e.Lo, touched)
		if err != nil {
			return nil, err
		}
		hi, err := a.rewriteExpr(e.Hi, touched)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BetweenExpr{Expr: x, Lo: lo, Hi: hi, Not: e.Not}, nil
	case *sqlparser.InExpr:
		if e.Subquery != nil {
			return nil, fmt.Errorf("opt: nested IN subquery not supported here")
		}
		x, err := a.rewriteExpr(e.Expr, touched)
		if err != nil {
			return nil, err
		}
		out := &sqlparser.InExpr{Expr: x, Not: e.Not}
		for _, item := range e.List {
			ri, err := a.rewriteExpr(item, touched)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, ri)
		}
		return out, nil
	case *sqlparser.IsNullExpr:
		x, err := a.rewriteExpr(e.Expr, touched)
		if err != nil {
			return nil, err
		}
		return &sqlparser.IsNullExpr{Expr: x, Not: e.Not}, nil
	case *sqlparser.FuncExpr:
		out := &sqlparser.FuncExpr{Name: e.Name, Star: e.Star}
		for _, arg := range e.Args {
			ra, err := a.rewriteExpr(arg, touched)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	case *sqlparser.ExistsExpr:
		return nil, fmt.Errorf("opt: EXISTS is only supported as a top-level WHERE conjunct")
	default:
		return nil, fmt.Errorf("opt: unsupported expression %T", e)
	}
}

// resolveRefIn resolves a (possibly unqualified, possibly derived-alias)
// column reference against the given leaves, consulting derived-table alias
// maps first.
func (a *algebrizer) resolveRefIn(leaves []*Leaf, ref *sqlparser.ColumnRef) (*sqlparser.ColumnRef, error) {
	if ref.Table != "" {
		for _, am := range a.aliasMaps {
			if am.alias == ref.Table {
				mapped, ok := am.cols[strings.ToLower(ref.Column)]
				if !ok {
					return nil, fmt.Errorf("opt: derived table %s has no column %s", ref.Table, ref.Column)
				}
				return mapped, nil
			}
		}
		for _, l := range leaves {
			if l.Binding == ref.Table {
				if l.Table.ColumnIndex(ref.Column) < 0 {
					return nil, fmt.Errorf("opt: table %s has no column %s", ref.Table, ref.Column)
				}
				return &sqlparser.ColumnRef{Table: ref.Table, Column: ref.Column}, nil
			}
		}
		return nil, fmt.Errorf("opt: unknown table or alias %s", ref.Table)
	}
	var found *sqlparser.ColumnRef
	for _, l := range leaves {
		if l.Table.ColumnIndex(ref.Column) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("opt: ambiguous column %s", ref.Column)
			}
			found = &sqlparser.ColumnRef{Table: l.Binding, Column: ref.Column}
		}
	}
	if found == nil {
		return nil, fmt.Errorf("opt: unknown column %s", ref.Column)
	}
	return found, nil
}

// finishing resolves the projection, grouping, having and ordering parts,
// extracting aggregate computations.
func (a *algebrizer) finishing(q *Query, sel *sqlparser.SelectStmt) error {
	q.Top = sel.Top
	q.Distinct = sel.Distinct
	// Expand stars.
	for _, item := range sel.Items {
		if !item.Star {
			resolved, _, err := a.resolveExpr(item.Expr)
			if err != nil {
				return err
			}
			q.Items = append(q.Items, sqlparser.SelectItem{Expr: resolved, Alias: item.Alias})
			continue
		}
		for _, l := range q.Leaves {
			if item.StarTable != "" && item.StarTable != l.Binding {
				continue
			}
			if l.Join != exec.JoinInner {
				continue // semi-join leaves do not contribute output columns
			}
			for _, c := range l.Table.Columns {
				q.Items = append(q.Items, sqlparser.SelectItem{
					Expr: &sqlparser.ColumnRef{Table: l.Binding, Column: c.Name},
				})
			}
		}
	}
	for _, g := range sel.GroupBy {
		resolved, _, err := a.resolveExpr(g)
		if err != nil {
			return err
		}
		q.GroupBy = append(q.GroupBy, resolved)
	}
	// Extract aggregates from items, HAVING and ORDER BY.
	for i := range q.Items {
		expr, err := a.extractAggs(q, q.Items[i].Expr)
		if err != nil {
			return err
		}
		q.Items[i].Expr = expr
	}
	if sel.Having != nil {
		resolved, _, err := a.resolveExpr(sel.Having)
		if err != nil {
			return err
		}
		resolved, err = a.extractAggs(q, resolved)
		if err != nil {
			return err
		}
		q.Having = resolved
	}
	for _, o := range sel.OrderBy {
		resolved, err := a.resolveOrderItem(q, o)
		if err != nil {
			return err
		}
		q.OrderBy = append(q.OrderBy, resolved)
	}
	if len(q.Aggs) > 0 || len(q.GroupBy) > 0 {
		// Grouped query: every non-aggregate output expression must be a
		// grouping expression (checked loosely: plain column refs only).
		for _, item := range q.Items {
			if err := checkGrouped(item.Expr, q); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolveOrderItem allows ORDER BY to reference projection aliases.
func (a *algebrizer) resolveOrderItem(q *Query, o sqlparser.OrderItem) (sqlparser.OrderItem, error) {
	if ref, ok := o.Expr.(*sqlparser.ColumnRef); ok && ref.Table == "" {
		for _, item := range q.Items {
			if item.Alias != "" && strings.EqualFold(item.Alias, ref.Column) {
				return sqlparser.OrderItem{Expr: item.Expr, Desc: o.Desc}, nil
			}
		}
	}
	resolved, _, err := a.resolveExpr(o.Expr)
	if err != nil {
		return sqlparser.OrderItem{}, err
	}
	resolved, err = a.extractAggs(q, resolved)
	if err != nil {
		return sqlparser.OrderItem{}, err
	}
	return sqlparser.OrderItem{Expr: resolved, Desc: o.Desc}, nil
}

// extractAggs replaces aggregate calls with references to aggregate output
// columns, registering each distinct aggregate in q.Aggs.
func (a *algebrizer) extractAggs(q *Query, e sqlparser.Expr) (sqlparser.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sqlparser.FuncExpr:
		if !e.IsAggregate() {
			return e, nil
		}
		var arg sqlparser.Expr
		if !e.Star {
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("opt: aggregate %s needs one argument", e.Name)
			}
			arg = e.Args[0]
		}
		// Reuse an existing identical aggregate.
		sig := e.SQL()
		for i := range q.Aggs {
			existing := &sqlparser.FuncExpr{Name: q.Aggs[i].Func, Star: q.Aggs[i].Star}
			if q.Aggs[i].Arg != nil {
				existing.Args = []sqlparser.Expr{q.Aggs[i].Arg}
			}
			if existing.SQL() == sig {
				return q.Aggs[i].Ref, nil
			}
		}
		ref := &sqlparser.ColumnRef{Table: aggBinding, Column: fmt.Sprintf("agg%d", len(q.Aggs))}
		q.Aggs = append(q.Aggs, AggItem{Func: e.Name, Arg: arg, Star: e.Star, Ref: ref})
		return ref, nil
	case *sqlparser.BinaryExpr:
		l, err := a.extractAggs(q, e.Left)
		if err != nil {
			return nil, err
		}
		r, err := a.extractAggs(q, e.Right)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: e.Op, Left: l, Right: r}, nil
	case *sqlparser.NotExpr:
		in, err := a.extractAggs(q, e.Inner)
		if err != nil {
			return nil, err
		}
		return &sqlparser.NotExpr{Inner: in}, nil
	case *sqlparser.NegExpr:
		in, err := a.extractAggs(q, e.Inner)
		if err != nil {
			return nil, err
		}
		return &sqlparser.NegExpr{Inner: in}, nil
	default:
		return e, nil
	}
}

// aggBinding is the pseudo-binding aggregate outputs live under.
const aggBinding = "#agg"

func checkGrouped(e sqlparser.Expr, q *Query) error {
	switch e := e.(type) {
	case nil, *sqlparser.Literal:
		return nil
	case *sqlparser.ColumnRef:
		if e.Table == aggBinding {
			return nil
		}
		for _, g := range q.GroupBy {
			if gr, ok := g.(*sqlparser.ColumnRef); ok && gr.Table == e.Table && gr.Column == e.Column {
				return nil
			}
		}
		return fmt.Errorf("opt: column %s must appear in GROUP BY or an aggregate", e.SQL())
	case *sqlparser.BinaryExpr:
		if err := checkGrouped(e.Left, q); err != nil {
			return err
		}
		return checkGrouped(e.Right, q)
	case *sqlparser.NegExpr:
		return checkGrouped(e.Inner, q)
	default:
		return nil
	}
}

// collectNeededColumns records, per leaf, which columns the query touches.
func (a *algebrizer) collectNeededColumns(q *Query) {
	needed := map[string]map[string]bool{} // binding -> column set
	add := func(ref *sqlparser.ColumnRef) {
		if ref.Table == aggBinding {
			return
		}
		if needed[ref.Table] == nil {
			needed[ref.Table] = map[string]bool{}
		}
		needed[ref.Table][ref.Column] = true
	}
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		switch e := e.(type) {
		case *sqlparser.ColumnRef:
			add(e)
		case *sqlparser.BinaryExpr:
			walk(e.Left)
			walk(e.Right)
		case *sqlparser.NotExpr:
			walk(e.Inner)
		case *sqlparser.NegExpr:
			walk(e.Inner)
		case *sqlparser.BetweenExpr:
			walk(e.Expr)
			walk(e.Lo)
			walk(e.Hi)
		case *sqlparser.InExpr:
			walk(e.Expr)
			for _, item := range e.List {
				walk(item)
			}
		case *sqlparser.IsNullExpr:
			walk(e.Expr)
		case *sqlparser.FuncExpr:
			for _, arg := range e.Args {
				walk(arg)
			}
		}
	}
	for _, item := range q.Items {
		walk(item.Expr)
	}
	for _, ag := range q.Aggs {
		if ag.Arg != nil {
			walk(ag.Arg)
		}
	}
	for _, g := range q.GroupBy {
		walk(g)
	}
	walk(q.Having)
	for _, o := range q.OrderBy {
		walk(o.Expr)
	}
	for _, j := range q.Joins {
		walk(j.Expr)
	}
	for _, r := range q.Residual {
		walk(r)
	}
	for _, l := range q.Leaves {
		for _, p := range l.Preds {
			walk(p)
		}
	}
	for _, l := range q.Leaves {
		cols := needed[l.Binding]
		// Always include the primary key so index lookups and view matching
		// have a stable anchor.
		for _, pk := range l.Table.PrimaryKey {
			if cols == nil {
				cols = map[string]bool{}
				needed[l.Binding] = cols
			}
			cols[pk] = true
		}
		for _, c := range l.Table.Columns {
			if cols[c.Name] {
				l.Cols = append(l.Cols, c.Name)
			}
		}
	}
}

func sortInstanceIDs(ids []cc.InstanceID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
