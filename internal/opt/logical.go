// Package opt is the cost-based query optimizer shared by the back-end
// server and the cache DBMS (MTCache). It implements the paper's key
// machinery (Section 3.2):
//
//   - an algebrizer that resolves names, flattens SPJ derived tables,
//     rewrites EXISTS/IN subqueries into semi/anti joins, and normalizes the
//     query's currency clauses into a cc.Constraint (the *required
//     consistency property*);
//   - view matching in the spirit of [GL01] restricted to the prototype's
//     view class (selections/projections of one table);
//   - compile-time consistency checking: delivered consistency properties
//     are computed bottom-up and plans violating the required property are
//     discarded as early as possible;
//   - run-time currency checking: local view access is wrapped in a
//     SwitchUnion whose currency guard consults the region's local heartbeat;
//   - a cost model including the guarded-plan formula
//     c = p*c_local + (1-p)*c_remote + c_guard with p = clamp((B-d)/f, 0, 1).
//
// The same planner serves both sites: at the back end every table is local,
// there is no remote fall-back and constraints are trivially satisfied (the
// master is always current); at the cache, base tables are empty shadows and
// data lives in materialized views plus the remote server.
package opt

import (
	"fmt"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/cc"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// RemoteExecutor ships a SQL query to the back-end server. The cache's
// remote link implements it; it is nil at the back end itself.
type RemoteExecutor interface {
	// Query executes sql at the back end and returns all result rows.
	Query(sql string) ([]sqltypes.Row, error)
}

// RegionClock reports replica freshness for currency guards: the timestamp
// in the region's local heartbeat table (Section 3.1).
type RegionClock interface {
	// LastSync returns the latest heartbeat timestamp replicated into the
	// region, and false if the region has never synchronized.
	LastSync(regionID int) (time.Time, bool)
}

// Site describes the server a query is being planned for.
type Site struct {
	// Cat is the site's catalog: at the cache, the shadow catalog whose
	// statistics describe the back-end data.
	Cat *catalog.Catalog
	// LocalTable returns local row storage for a base table, or nil. At the
	// back end every table is local; at the cache base tables are empty
	// shadows (nil).
	LocalTable func(name string) *storage.Table
	// LocalView returns local row storage for a materialized view, or nil.
	LocalView func(name string) *storage.Table
	// Remote is the link to the back end (nil at the back end).
	Remote RemoteExecutor
	// Regions reports replica freshness (nil at the back end).
	Regions RegionClock
	// Heartbeat is the cache's local heartbeat table (one row per region:
	// cid, ts), read by currency guards exactly as the paper's predicate
	// EXISTS(SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B).
	// Nil at the back end.
	Heartbeat *storage.Table
	// Clock is the site's time source.
	Clock vclock.Clock
}

// IsBackend reports whether the site is the master (no remote fall-back).
func (s *Site) IsBackend() bool { return s.Remote == nil }

// Options tunes planning per query.
type Options struct {
	// MinSync is the timeline-consistency floor (Section 2.3): local data
	// may only be used if its region has synchronized at or past this time.
	// Zero means no floor.
	MinSync time.Time
	// NoGuards disables currency guards (ablation): local views are used
	// unguarded whenever consistency allows. Not used in normal operation.
	NoGuards bool
	// ForceLocal disables cost-based remote/local choice (ablation): any
	// local view that satisfies the constraints is used even if a remote
	// plan is cheaper.
	ForceLocal bool
	// IgnoreConstraints skips compile-time consistency checking entirely
	// (used by the serve-stale violation action and by ablations).
	IgnoreConstraints bool
	// NoViews hides all materialized views from the planner, yielding the
	// traditional remote-only plan (the paper's unguarded remote baseline).
	NoViews bool
	// MaxDOP overrides the degree of parallelism the planner assumes for
	// parallel scans (normally GOMAXPROCS capped by the cost model). It is
	// also stamped into built ParallelScan operators. Zero means automatic;
	// 1 effectively disables parallel plans.
	MaxDOP int
	// NoParallel disables parallel scan candidates entirely (ablation, and
	// the guaranteed-serial path for callers that need deterministic row
	// order without an ORDER BY).
	NoParallel bool
}

// Leaf is one base-table instance in the flattened query: the unit of
// access-path selection and of C&C constraint tracking.
type Leaf struct {
	ID      cc.InstanceID
	Table   *catalog.Table
	Binding string // alias the instance is known by in the query
	// Preds are single-table conjuncts on this instance (pushed down).
	Preds []sqlparser.Expr
	// Join describes how the leaf enters the join tree: inner for plain
	// FROM entries, semi/anti for EXISTS/NOT EXISTS subqueries.
	Join exec.JoinKind
	// Cols are the table columns the query needs from this instance.
	Cols []string
}

// JoinPred is an equi-join conjunct between two leaves.
type JoinPred struct {
	LeftLeaf, RightLeaf cc.InstanceID
	LeftCol, RightCol   string // bare column names on the respective leaves
	Expr                sqlparser.Expr
}

// AggItem is one aggregate computation discovered in the projection or
// HAVING clause.
type AggItem struct {
	Func string
	Arg  sqlparser.Expr // nil for COUNT(*)
	Star bool
	// Ref is the rewritten column reference standing for this aggregate in
	// post-aggregation expressions.
	Ref *sqlparser.ColumnRef
}

// Query is the algebrized (logical) form of a SELECT: flat join graph plus
// finishing steps.
type Query struct {
	Stmt   *sqlparser.SelectStmt // bound original statement (for remote SQL)
	Leaves []*Leaf
	Joins  []JoinPred
	// Residual conjuncts reference multiple leaves non-equi (evaluated on
	// the join output).
	Residual []sqlparser.Expr
	// Constraint is the normalized required consistency property.
	Constraint cc.Constraint
	// HasCurrencyClause records whether any block had an explicit clause;
	// without one the Constraint is the tight default.
	HasCurrencyClause bool

	// Finishing steps.
	Items    []sqlparser.SelectItem
	GroupBy  []sqlparser.Expr
	Aggs     []AggItem
	Having   sqlparser.Expr
	OrderBy  []sqlparser.OrderItem
	Top      int64
	Distinct bool
}

// Leaf returns the leaf with the given instance id, or nil.
func (q *Query) Leaf(id cc.InstanceID) *Leaf {
	for _, l := range q.Leaves {
		if l.ID == id {
			return l
		}
	}
	return nil
}

func (q *Query) binding(id cc.InstanceID) string {
	if l := q.Leaf(id); l != nil {
		return l.Binding
	}
	return fmt.Sprintf("?%d", id)
}

// Plan is a complete physical plan with its metadata.
type Plan struct {
	Root exec.Operator
	// Build re-instantiates a fresh executable tree from the plan — the
	// "setup" phase the paper profiles in Table 4.5. Root is the first
	// instantiation.
	Build func() (exec.Operator, error)
	// Cost is the estimated cost in abstract milliseconds.
	Cost float64
	// Delivered is the plan's delivered consistency property.
	Delivered cc.Delivered
	// Shape describes the plan for diagnostics and experiments, e.g.
	// "Remote(q)" or "HashJoin(Guard(cust_prj), Remote(Orders))".
	Shape string
	// UsesLocal reports whether any local view appears in the plan.
	UsesLocal bool
	// Guards counts SwitchUnion currency guards in the plan.
	Guards int
	// LocalLeaves and RemoteLeaves count base-table accesses by kind (a
	// guarded view access counts as local).
	LocalLeaves  int
	RemoteLeaves int
	// DOP is the plan's degree of parallelism: the worker count of its
	// widest ParallelScan, or 1 for fully serial plans.
	DOP int
	// Setup is how long optimization + operator construction took.
	Setup time.Duration
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("%s cost=%.3f guards=%d", p.Shape, p.Cost, p.Guards)
}
