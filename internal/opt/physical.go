package opt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/cc"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// Planner builds physical plans for one site.
type Planner struct {
	Site *Site
	Opts Options
}

// NewPlanner returns a planner with default options.
func NewPlanner(site *Site) *Planner { return &Planner{Site: site} }

// skipConsistency reports whether compile-time consistency checking is
// disabled: always at the back end (the master is current and consistent),
// or explicitly via options.
func (p *Planner) skipConsistency() bool {
	return p.Site.IsBackend() || p.Opts.IgnoreConstraints
}

// keepPerState bounds how many candidates with distinct delivered
// consistency properties are retained per join-order DP state.
const keepPerState = 3

// PlanSelect algebrizes and plans a SELECT, returning the chosen plan and
// the logical query (for inspection by tests and the experiment harness).
func (p *Planner) PlanSelect(sel *sqlparser.SelectStmt) (*Plan, *Query, error) {
	clk := p.clock()
	start := clk.Now()
	q, err := Algebrize(sel, p.Site.Cat)
	if err != nil {
		return nil, nil, err
	}
	inferTransitivePreds(q)
	plan, err := p.planQuery(q)
	if err != nil {
		return nil, q, err
	}
	plan.Setup = clk.Now().Sub(start)
	return plan, q, nil
}

// clock returns the site's time source, defaulting to the wall clock for
// sites built without one (tests constructing a bare Site).
func (p *Planner) clock() vclock.Clock {
	if p.Site != nil && p.Site.Clock != nil {
		return p.Site.Clock
	}
	return vclock.Wall{}
}

// cand is a partial or complete physical plan candidate. build must return a
// fresh operator tree on every call (SwitchUnion branches need independent
// trees).
type cand struct {
	build     func() (exec.Operator, error)
	schema    *exec.Schema
	cost      float64
	rows      float64
	delivered cc.Delivered
	shape     string
	usesLocal bool
	guards    int
	// localLeaves / remoteLeaves count how the plan accesses its base-table
	// instances (a guarded view access counts as local).
	localLeaves, remoteLeaves int
	// order lists the qualified columns ("binding.col") the output is
	// sorted ascending by, or nil if unordered. Enables merge joins.
	order []string
	// dop is the degree of parallelism: the widest ParallelScan in the
	// subtree, or 0 for fully serial candidates.
	dop int
}

// costDOP returns the worker count the cost model assumes for parallel
// scans: MaxDOP if set, else GOMAXPROCS, capped at maxCostDOP so plan
// choices stay stable across machines.
func (p *Planner) costDOP() int {
	d := p.Opts.MaxDOP
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	if d > maxCostDOP {
		d = maxCostDOP
	}
	if d < 1 {
		d = 1
	}
	return d
}

// maxDop combines subtree degrees of parallelism.
func maxDop(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (p *Planner) planQuery(q *Query) (*Plan, error) {
	// Split residual conjuncts: those touching semi/anti leaves must be
	// evaluated inside the corresponding join; the rest filter at the top.
	semiResiduals, innerResiduals, err := splitResiduals(q)
	if err != nil {
		return nil, err
	}

	var finals []*cand
	joinCands, err := p.enumerateJoins(q, semiResiduals)
	if err != nil {
		return nil, err
	}
	for _, jc := range joinCands {
		fc, err := p.finish(q, jc, innerResiduals)
		if err != nil {
			return nil, err
		}
		finals = append(finals, fc)
	}
	// The ship-everything remote plan (the paper's plan 1).
	if !p.Site.IsBackend() {
		finals = append(finals, p.wholeRemoteCand(q))
	}
	// Keep only plans whose delivered consistency satisfies the required
	// property (compile-time consistency checking). The back end is the
	// master: everything it produces is current and consistent.
	var valid []*cand
	for _, f := range finals {
		if p.skipConsistency() || f.delivered.Satisfies(q.Constraint) {
			valid = append(valid, f)
		}
	}
	if len(valid) == 0 {
		return nil, fmt.Errorf("opt: no plan satisfies consistency constraint %v", q.Constraint)
	}
	best := valid[0]
	for _, f := range valid[1:] {
		if p.Opts.ForceLocal && f.usesLocal != best.usesLocal {
			if f.usesLocal {
				best = f
			}
			continue
		}
		if f.cost < best.cost {
			best = f
		}
	}
	root, err := best.build()
	if err != nil {
		return nil, err
	}
	return &Plan{
		Root:         root,
		Build:        best.build,
		Cost:         best.cost,
		Delivered:    best.delivered,
		Shape:        best.shape,
		UsesLocal:    best.usesLocal,
		Guards:       best.guards,
		LocalLeaves:  best.localLeaves,
		RemoteLeaves: best.remoteLeaves,
		DOP:          maxDop(best.dop, 1),
	}, nil
}

// splitResiduals classifies multi-leaf non-equi conjuncts.
func splitResiduals(q *Query) (map[cc.InstanceID][]sqlparser.Expr, []sqlparser.Expr, error) {
	semi := map[cc.InstanceID][]sqlparser.Expr{}
	var inner []sqlparser.Expr
	for _, r := range q.Residual {
		var touchesSemi *Leaf
		for _, l := range q.Leaves {
			if l.Join != exec.JoinInner && exprTouches(r, l.Binding) {
				if touchesSemi != nil {
					return nil, nil, fmt.Errorf("opt: predicate spans two EXISTS subqueries")
				}
				touchesSemi = l
			}
		}
		if touchesSemi != nil {
			semi[touchesSemi.ID] = append(semi[touchesSemi.ID], r)
		} else {
			inner = append(inner, r)
		}
	}
	return semi, inner, nil
}

func exprTouches(e sqlparser.Expr, binding string) bool {
	found := false
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		switch e := e.(type) {
		case *sqlparser.ColumnRef:
			if e.Table == binding {
				found = true
			}
		case *sqlparser.BinaryExpr:
			walk(e.Left)
			walk(e.Right)
		case *sqlparser.NotExpr:
			walk(e.Inner)
		case *sqlparser.NegExpr:
			walk(e.Inner)
		case *sqlparser.BetweenExpr:
			walk(e.Expr)
			walk(e.Lo)
			walk(e.Hi)
		case *sqlparser.InExpr:
			walk(e.Expr)
			for _, it := range e.List {
				walk(it)
			}
		case *sqlparser.IsNullExpr:
			walk(e.Expr)
		case *sqlparser.FuncExpr:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return found
}

// inferTransitivePreds propagates equality-with-literal predicates across
// equi-join edges (e.g. C.c_custkey = $K and C.c_custkey = O.o_custkey
// implies O.o_custkey = $K), which makes per-leaf remote fetches selective.
func inferTransitivePreds(q *Query) {
	for pass := 0; pass < 2; pass++ {
		for _, j := range q.Joins {
			l, r := q.Leaf(j.LeftLeaf), q.Leaf(j.RightLeaf)
			copyEqLiteral(l, j.LeftCol, r, j.RightCol)
			copyEqLiteral(r, j.RightCol, l, j.LeftCol)
		}
	}
}

func copyEqLiteral(from *Leaf, fromCol string, to *Leaf, toCol string) {
	for _, pred := range from.Preds {
		be, ok := pred.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEQ {
			continue
		}
		col, lit, op := normalizeCompare(be)
		if op != sqlparser.OpEQ || col != fromCol {
			continue
		}
		newPred := &sqlparser.BinaryExpr{
			Op:   sqlparser.OpEQ,
			Left: &sqlparser.ColumnRef{Table: to.Binding, Column: toCol},
			Right: &sqlparser.Literal{
				Val: lit,
			},
		}
		dup := false
		for _, existing := range to.Preds {
			if existing.SQL() == newPred.SQL() {
				dup = true
				break
			}
		}
		if !dup {
			to.Preds = append(to.Preds, newPred)
		}
	}
}

// ---- leaf access ----

// leafSchema is the canonical output schema of any access path for a leaf:
// exactly the needed columns, bound to the leaf's binding.
func leafSchema(leaf *Leaf) *exec.Schema {
	cols := make([]exec.Col, len(leaf.Cols))
	for i, name := range leaf.Cols {
		cols[i] = exec.Col{Binding: leaf.Binding, Name: name, Kind: leaf.Table.Column(name).Type}
	}
	return exec.NewSchema(cols...)
}

// storedSchema is the schema of rows as stored in a table or view.
func storedSchema(def *catalog.Table, binding string) *exec.Schema {
	cols := make([]exec.Col, len(def.Columns))
	for i, c := range def.Columns {
		cols[i] = exec.Col{Binding: binding, Name: c.Name, Kind: c.Type}
	}
	return exec.NewSchema(cols...)
}

// accessPath describes how to drive a stored table for a leaf's predicates.
type accessPath struct {
	index     string
	lo, hi    storage.Bound
	residual  []sqlparser.Expr // predicates not absorbed by the range
	cost      float64
	usedIndex bool
}

// chooseAccessPath picks the best index for the leaf's predicates against
// the given stored definition (a base table at the back end, or a
// materialized view at the cache).
func chooseAccessPath(def *catalog.Table, stats *catalog.TableStats, preds []sqlparser.Expr, outRows float64) accessPath {
	total := float64(stats.Rows())
	best := accessPath{residual: preds, cost: total*costScanRow + outRows*costRow}
	for _, idx := range def.Indexes {
		lo, hi, used, residual := boundsForIndex(idx, preds)
		if !used {
			continue
		}
		sel := 1.0
		for _, p := range preds {
			if !containsExpr(residual, p) {
				sel *= selectivity(stats, p)
			}
		}
		touched := total * sel
		c := costSeek + touched*costScanRow + outRows*costRow
		if !idx.Clustered {
			c += touched * costSeek * 0.1
		}
		if c < best.cost {
			best = accessPath{index: idx.Name, lo: lo, hi: hi, residual: residual, cost: c, usedIndex: true}
		}
	}
	return best
}

func containsExpr(list []sqlparser.Expr, e sqlparser.Expr) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// boundsForIndex derives a key range on the index's leading column from the
// predicates. used=false if no predicate constrains the leading column.
func boundsForIndex(idx *catalog.Index, preds []sqlparser.Expr) (lo, hi storage.Bound, used bool, residual []sqlparser.Expr) {
	lead := idx.Columns[0]
	var loV, hiV sqltypes.Value
	loIncl, hiIncl := true, true
	haveLo, haveHi := false, false
	for _, p := range preds {
		absorbed := false
		switch e := p.(type) {
		case *sqlparser.BinaryExpr:
			col, lit, op := normalizeCompare(e)
			if col == lead && !lit.IsNull() {
				switch op {
				case sqlparser.OpEQ:
					loV, hiV, haveLo, haveHi = lit, lit, true, true
					loIncl, hiIncl = true, true
					absorbed = true
				case sqlparser.OpGT:
					if !haveLo || lit.Compare(loV) >= 0 {
						loV, loIncl, haveLo = lit, false, true
					}
					absorbed = true
				case sqlparser.OpGE:
					if !haveLo || lit.Compare(loV) > 0 {
						loV, loIncl, haveLo = lit, true, true
					}
					absorbed = true
				case sqlparser.OpLT:
					if !haveHi || lit.Compare(hiV) <= 0 {
						hiV, hiIncl, haveHi = lit, false, true
					}
					absorbed = true
				case sqlparser.OpLE:
					if !haveHi || lit.Compare(hiV) < 0 {
						hiV, hiIncl, haveHi = lit, true, true
					}
					absorbed = true
				}
			}
		case *sqlparser.BetweenExpr:
			if !e.Not && columnOf(e.Expr) == lead {
				loLit, okLo := literalOf(e.Lo)
				hiLit, okHi := literalOf(e.Hi)
				if okLo && okHi {
					if !haveLo || loLit.Compare(loV) > 0 {
						loV, loIncl, haveLo = loLit, true, true
					}
					if !haveHi || hiLit.Compare(hiV) < 0 {
						hiV, hiIncl, haveHi = hiLit, true, true
					}
					absorbed = true
				}
			}
		}
		if !absorbed {
			residual = append(residual, p)
		}
	}
	if !haveLo && !haveHi {
		return storage.Bound{}, storage.Bound{}, false, preds
	}
	if haveLo {
		lo = storage.Bound{Vals: sqltypes.Row{loV}, Inclusive: loIncl}
	}
	if haveHi {
		hi = storage.Bound{Vals: sqltypes.Row{hiV}, Inclusive: hiIncl}
	}
	return lo, hi, true, residual
}

// buildStoredAccess constructs the operator for scanning a stored object and
// projecting to the leaf schema.
func buildStoredAccess(tbl *storage.Table, binding string, path accessPath, leaf *Leaf) (exec.Operator, error) {
	full := storedSchema(tbl.Def(), binding)
	scan := exec.NewScan(tbl, full)
	scan.Index = path.index
	scan.Lo, scan.Hi = path.lo, path.hi
	if len(path.residual) > 0 {
		res := andAll(path.residual)
		pred, err := exec.Compile(res, full)
		if err != nil {
			return nil, err
		}
		scan.Filter = pred
		if k, ok := exec.CompileKernel(res, full); ok {
			scan.FilterKernel = k
		}
	}
	return projectTo(scan, leafSchema(leaf))
}

// clusteredPath reports whether the access path drives the clustered index
// (morsel partitioning only applies to the primary B+-tree).
func clusteredPath(def *catalog.Table, path accessPath) bool {
	if path.index == "" {
		return true
	}
	for _, idx := range def.Indexes {
		if idx.Name == path.index {
			return idx.Clustered
		}
	}
	return false
}

// parallelAccess decides whether a morsel-parallel scan of the chosen path
// beats the serial access, returning its estimated cost and worker count.
// Only clustered paths qualify (morsels partition the primary key range),
// and a parallel scan is unordered — the planner keeps the ordered serial
// candidate alongside for plans that need sort order (merge-join inputs).
func (p *Planner) parallelAccess(def *catalog.Table, path accessPath, outRows float64) (float64, int, bool) {
	if p.Opts.NoParallel {
		return 0, 0, false
	}
	dop := p.costDOP()
	if dop < 2 || !clusteredPath(def, path) {
		return 0, 0, false
	}
	c := parallelScanCost(path.cost, outRows, dop)
	if c >= path.cost {
		return 0, 0, false
	}
	return c, dop, true
}

// buildParallelAccess constructs the morsel-parallel counterpart of
// buildStoredAccess for a clustered access path.
func (p *Planner) buildParallelAccess(tbl *storage.Table, binding string, path accessPath, leaf *Leaf) (exec.Operator, error) {
	full := storedSchema(tbl.Def(), binding)
	ps := exec.NewParallelScan(tbl, full)
	ps.Lo, ps.Hi = path.lo, path.hi
	ps.DOP = p.Opts.MaxDOP // 0 defers to the execution context
	if len(path.residual) > 0 {
		res := andAll(path.residual)
		pred, err := exec.Compile(res, full)
		if err != nil {
			return nil, err
		}
		ps.Filter = pred
		if k, ok := exec.CompileKernel(res, full); ok {
			ps.FilterKernel = k
		}
	}
	return projectTo(ps, leafSchema(leaf))
}

// projectTo narrows an operator's output to the target schema by column
// lookup.
func projectTo(child exec.Operator, target *exec.Schema) (exec.Operator, error) {
	src := child.Schema()
	// If the schemas already line up, skip the projection.
	if len(src.Cols) == len(target.Cols) {
		same := true
		for i := range src.Cols {
			if src.Cols[i] != target.Cols[i] {
				same = false
				break
			}
		}
		if same {
			return child, nil
		}
	}
	exprs := make([]exec.Compiled, len(target.Cols))
	cols := make([]int, len(target.Cols))
	for i, c := range target.Cols {
		idx := src.Lookup(c.Binding, c.Name)
		if idx < 0 {
			return nil, exec.ErrNoColumn(c.Binding, c.Name)
		}
		ord := idx
		cols[i] = ord
		exprs[i] = func(_ *exec.EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			return row[ord], nil
		}
	}
	// Every projection built here is a pure column gather, so the columnar
	// path can forward vectors instead of evaluating the closures.
	return &exec.Project{Child: child, Exprs: exprs, Cols: cols, Out: target}, nil
}

func andAll(preds []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, Left: out, Right: p}
		}
	}
	return out
}

// accessOrder derives the output ordering of a stored access path: the
// driving index's key columns (the clustered PK for sequential scans),
// qualified by the leaf binding and truncated at the first column the leaf
// does not fetch.
func accessOrder(def *catalog.Table, path accessPath, leaf *Leaf) []string {
	var cols []string
	if path.index == "" {
		cols = def.PrimaryKey
	} else {
		for _, idx := range def.Indexes {
			if idx.Name == path.index {
				cols = idx.Columns
			}
		}
	}
	var out []string
	for _, c := range cols {
		found := false
		for _, have := range leaf.Cols {
			if have == c {
				found = true
				break
			}
		}
		if !found {
			break
		}
		out = append(out, leaf.Binding+"."+c)
	}
	return out
}

// leafCandidates returns the access-path candidates for one leaf.
func (p *Planner) leafCandidates(q *Query, leaf *Leaf) ([]*cand, error) {
	outRows := leafRows(leaf)
	schema := leafSchema(leaf)
	var cands []*cand

	if tbl := p.Site.LocalTable(leaf.Table.Name); tbl != nil {
		// Base table stored locally (the back end).
		path := chooseAccessPath(tbl.Def(), leaf.Table.Stats, leaf.Preds, outRows)
		cands = append(cands, &cand{
			build:       func() (exec.Operator, error) { return buildStoredAccess(tbl, leaf.Binding, path, leaf) },
			schema:      schema,
			cost:        path.cost,
			rows:        outRows,
			delivered:   cc.DeliverScan(catalog.MasterRegionID, leaf.ID),
			shape:       fmt.Sprintf("Scan(%s)", leaf.Table.Name),
			localLeaves: 1,
			order:       accessOrder(tbl.Def(), path, leaf),
		})
		// Morsel-parallel variant of the same access: unordered, so it is a
		// second candidate next to the ordered serial scan, not a
		// replacement.
		if pcost, dop, ok := p.parallelAccess(tbl.Def(), path, outRows); ok {
			cands = append(cands, &cand{
				build:       func() (exec.Operator, error) { return p.buildParallelAccess(tbl, leaf.Binding, path, leaf) },
				schema:      schema,
				cost:        pcost,
				rows:        outRows,
				delivered:   cc.DeliverScan(catalog.MasterRegionID, leaf.ID),
				shape:       fmt.Sprintf("ParScan(%s)", leaf.Table.Name),
				localLeaves: 1,
				dop:         dop,
			})
		}
		return cands, nil
	}
	if p.Site.IsBackend() {
		return nil, fmt.Errorf("opt: back end has no storage for table %s", leaf.Table.Name)
	}

	// Remote fetch candidate.
	remote := p.remoteLeafCand(leaf, schema)
	cands = append(cands, remote)

	if p.Opts.NoViews {
		return cands, nil
	}
	// Matching materialized views, each wrapped in a currency guard.
	for _, view := range p.Site.Cat.ViewsOf(leaf.Table.Name) {
		vc, ok, err := p.viewCand(q, leaf, view, remote, schema)
		if err != nil {
			return nil, err
		}
		if ok {
			cands = append(cands, vc)
		}
	}
	return cands, nil
}

func (p *Planner) remoteLeafCand(leaf *Leaf, schema *exec.Schema) *cand {
	sql := leafFetchSQL(leaf)
	remoteExec := p.Site.Remote
	return &cand{
		build: func() (exec.Operator, error) {
			return &exec.Remote{
				SQL: sql,
				Out: schema,
				Fetch: func(*exec.EvalContext) ([]sqltypes.Row, error) {
					return remoteExec.Query(sql)
				},
			}, nil
		},
		schema:       schema,
		cost:         remoteFetchCost(leaf),
		rows:         leafRows(leaf),
		delivered:    cc.DeliverScan(catalog.MasterRegionID, leaf.ID),
		shape:        fmt.Sprintf("Remote(%s)", leaf.Table.Name),
		remoteLeaves: 1,
	}
}

// viewCand builds the guarded local-view candidate for a leaf, if the view
// matches and compile-time pruning does not rule it out.
func (p *Planner) viewCand(q *Query, leaf *Leaf, view *catalog.View, remote *cand, schema *exec.Schema) (*cand, bool, error) {
	if !viewMatches(view, leaf) {
		return nil, false, nil
	}
	vtbl := p.Site.LocalView(view.Name)
	if vtbl == nil {
		return nil, false, nil
	}
	region := p.Site.Cat.Region(view.RegionID)
	if region == nil {
		return nil, false, nil
	}
	bound, constrained := q.Constraint.BoundFor(leaf.ID)
	if !constrained {
		bound = time.Duration(math.MaxInt64) // unconstrained: always fresh enough
	}
	if !p.Opts.NoGuards && bound < region.MinCurrency() {
		// The region can never deliver data this fresh: discard at compile
		// time (the paper's "simple optimization").
		return nil, false, nil
	}
	outRows := leafRows(leaf)
	path := chooseAccessPath(vtbl.Def(), leaf.Table.Stats, leaf.Preds, outRows)
	localBuild := func() (exec.Operator, error) {
		return buildStoredAccess(vtbl, leaf.Binding, path, leaf)
	}
	localCost := path.cost
	dop := 0
	// Analytic view scans parallelize just like base-table scans; the guard
	// decision is unaffected (it is evaluated once at Open, before any
	// workers start).
	if pcost, pdop, ok := p.parallelAccess(vtbl.Def(), path, outRows); ok {
		localCost, dop = pcost, pdop
		localBuild = func() (exec.Operator, error) {
			return p.buildParallelAccess(vtbl, leaf.Binding, path, leaf)
		}
	}
	if p.Opts.NoGuards {
		return &cand{
			build:       localBuild,
			schema:      schema,
			cost:        localCost,
			rows:        outRows,
			delivered:   cc.DeliverScan(view.RegionID, leaf.ID),
			shape:       fmt.Sprintf("View(%s)", view.Name),
			usesLocal:   true,
			localLeaves: 1,
			dop:         dop,
		}, true, nil
	}
	guard := p.currencyGuard(view.RegionID, bound)
	label := fmt.Sprintf("Guard(%s|%s)", view.Name, remote.shape)
	remoteBuild := remote.build
	c := &cand{
		build: func() (exec.Operator, error) {
			local, err := localBuild()
			if err != nil {
				return nil, err
			}
			rem, err := remoteBuild()
			if err != nil {
				return nil, err
			}
			return &exec.SwitchUnion{Children: []exec.Operator{local, rem}, Selector: guard, Label: label, Region: view.RegionID, Staleness: p.stalenessProbe(view.RegionID), Bound: obs.NormalizeBound(bound)}, nil
		},
		schema: schema,
		rows:   outRows,
		delivered: cc.SwitchUnion(
			cc.DeliverScan(view.RegionID, leaf.ID),
			cc.DeliverScan(catalog.MasterRegionID, leaf.ID),
		),
		shape:       label,
		usesLocal:   true,
		guards:      1,
		localLeaves: 1,
		dop:         dop,
	}
	prob := cc.LocalProbability(bound, region.UpdateDelay, region.UpdateInterval)
	if !constrained {
		prob = 1
	}
	c.cost = prob*localCost + (1-prob)*remote.cost + costGuard
	return c, true, nil
}

// viewMatches implements the prototype's view-matching test: the view is a
// selection/projection of the leaf's table covering all needed columns, and
// the view's predicate is implied by the leaf's predicates (so the view
// contains every row the leaf needs).
func viewMatches(view *catalog.View, leaf *Leaf) bool {
	if view.BaseTable != leaf.Table.Name {
		return false
	}
	for _, col := range leaf.Cols {
		if view.ColumnIndex(col) < 0 {
			return false
		}
	}
	for _, vp := range view.Preds {
		if !predImplied(vp, leaf.Preds) {
			return false
		}
	}
	return true
}

// predImplied reports whether some leaf predicate implies the view
// predicate (conservatively).
func predImplied(vp catalog.SimplePred, preds []sqlparser.Expr) bool {
	for _, p := range preds {
		be, ok := p.(*sqlparser.BinaryExpr)
		if !ok {
			// A BETWEEN implies a one-sided view predicate through the
			// relevant end alone.
			if bt, ok := p.(*sqlparser.BetweenExpr); ok && !bt.Not && columnOf(bt.Expr) == vp.Column {
				lo, okLo := literalOf(bt.Lo)
				hi, okHi := literalOf(bt.Hi)
				if okLo && okHi {
					switch vp.Op {
					case catalog.OpGT, catalog.OpGE:
						if rangeImplies(lo, sqlparser.OpGE, vp) {
							return true
						}
					case catalog.OpLT, catalog.OpLE:
						if rangeImplies(hi, sqlparser.OpLE, vp) {
							return true
						}
					case catalog.OpEQ:
						if lo.Compare(vp.Value) == 0 && hi.Compare(vp.Value) == 0 {
							return true
						}
					}
				}
			}
			continue
		}
		col, lit, op := normalizeCompare(be)
		if col != vp.Column || lit.IsNull() {
			continue
		}
		switch vp.Op {
		case catalog.OpEQ:
			if op == sqlparser.OpEQ && lit.Compare(vp.Value) == 0 {
				return true
			}
		default:
			if rangeImplies(lit, op, vp) && (op == sqlparser.OpEQ || sameDirection(op, vp.Op)) {
				return true
			}
		}
	}
	return false
}

func sameDirection(qOp sqlparser.BinOp, vOp catalog.CompareOp) bool {
	switch vOp {
	case catalog.OpGT, catalog.OpGE:
		return qOp == sqlparser.OpGT || qOp == sqlparser.OpGE
	case catalog.OpLT, catalog.OpLE:
		return qOp == sqlparser.OpLT || qOp == sqlparser.OpLE
	default:
		return false
	}
}

// rangeImplies reports whether "col qOp lit" implies the view predicate.
func rangeImplies(lit sqltypes.Value, qOp sqlparser.BinOp, vp catalog.SimplePred) bool {
	c := lit.Compare(vp.Value)
	switch vp.Op {
	case catalog.OpGT:
		switch qOp {
		case sqlparser.OpEQ, sqlparser.OpGE:
			return c > 0
		case sqlparser.OpGT:
			return c >= 0
		}
	case catalog.OpGE:
		switch qOp {
		case sqlparser.OpEQ, sqlparser.OpGE, sqlparser.OpGT:
			return c >= 0
		}
	case catalog.OpLT:
		switch qOp {
		case sqlparser.OpEQ, sqlparser.OpLE:
			return c < 0
		case sqlparser.OpLT:
			return c <= 0
		}
	case catalog.OpLE:
		switch qOp {
		case sqlparser.OpEQ, sqlparser.OpLE, sqlparser.OpLT:
			return c <= 0
		}
	}
	return false
}

// stalenessProbe builds the SwitchUnion's staleness observer: the region's
// age at decision time (query Now minus last replicated heartbeat), reported
// into guard traces and metrics.
func (p *Planner) stalenessProbe(regionID int) func(*exec.EvalContext) (time.Duration, bool) {
	regions := p.Site.Regions
	if regions == nil {
		return nil
	}
	return func(ctx *exec.EvalContext) (time.Duration, bool) {
		ts, ok := regions.LastSync(regionID)
		if !ok {
			return 0, false
		}
		return ctx.Now.Sub(ts), true
	}
}

// currencyGuard builds the SwitchUnion selector that checks the region's
// local heartbeat: local branch (0) iff the replica's last-synchronized
// timestamp is within the bound of the query start time. When the site has
// a local heartbeat table the guard is evaluated as the paper's predicate —
// EXISTS(SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B) — as a
// real single-row plan through the executor; a timeline-consistency floor
// (Section 2.3) adds "AND TimeStamp >= floor".
func (p *Planner) currencyGuard(regionID int, bound time.Duration) exec.Selector {
	minSync := p.Opts.MinSync
	if hb := p.Site.Heartbeat; hb != nil {
		return heartbeatGuard(hb, regionID, bound, minSync)
	}
	// Fallback for sites wired without a heartbeat table (tests).
	regions := p.Site.Regions
	return func(ctx *exec.EvalContext) (int, error) {
		ts, ok := regions.LastSync(regionID)
		if !ok {
			return 1, nil
		}
		if !minSync.IsZero() && ts.Before(minSync) {
			return 1, nil
		}
		if bound == time.Duration(math.MaxInt64) {
			return 0, nil
		}
		if !ts.Before(ctx.Now.Add(-bound)) {
			return 0, nil
		}
		return 1, nil
	}
}

// heartbeatGuard compiles and evaluates the heartbeat EXISTS predicate.
func heartbeatGuard(hb *storage.Table, regionID int, bound time.Duration, minSync time.Time) exec.Selector {
	schema := storedSchema(hb.Def(), "hb")
	tsRef := &sqlparser.ColumnRef{Table: "hb", Column: "ts"}
	var pred sqlparser.Expr
	if bound != time.Duration(math.MaxInt64) {
		// ts > GETDATE() - B (B in seconds).
		pred = &sqlparser.BinaryExpr{
			Op:   sqlparser.OpGT,
			Left: tsRef,
			Right: &sqlparser.BinaryExpr{
				Op:    sqlparser.OpSub,
				Left:  &sqlparser.FuncExpr{Name: "GETDATE"},
				Right: &sqlparser.Literal{Val: sqltypes.NewFloat(bound.Seconds())},
			},
		}
	}
	if !minSync.IsZero() {
		floorPred := &sqlparser.BinaryExpr{
			Op:    sqlparser.OpGE,
			Left:  tsRef,
			Right: &sqlparser.Literal{Val: sqltypes.NewTime(minSync)},
		}
		if pred == nil {
			pred = floorPred
		} else {
			pred = &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, Left: pred, Right: floorPred}
		}
	}
	var filter exec.Compiled
	if pred != nil {
		c, err := exec.Compile(pred, schema)
		if err != nil {
			return func(*exec.EvalContext) (int, error) { return 0, err }
		}
		filter = c
	}
	key := sqltypes.Row{sqltypes.NewInt(int64(regionID))}
	pkIndex := ""
	for _, idx := range hb.Def().Indexes {
		if idx.Clustered {
			pkIndex = idx.Name
		}
	}
	return func(ctx *exec.EvalContext) (int, error) {
		scan := exec.NewScan(hb, schema)
		scan.Index = pkIndex
		scan.Lo = storage.Bound{Vals: key, Inclusive: true}
		scan.Hi = storage.Bound{Vals: key, Inclusive: true}
		scan.Filter = filter
		if err := scan.Open(ctx); err != nil {
			return 1, err
		}
		defer scan.Close()
		_, ok, err := scan.Next()
		if err != nil {
			return 1, err
		}
		if ok {
			return 0, nil // fresh enough: local branch
		}
		return 1, nil
	}
}

// ---- join enumeration ----

func (p *Planner) enumerateJoins(q *Query, semiResiduals map[cc.InstanceID][]sqlparser.Expr) ([]*cand, error) {
	n := len(q.Leaves)
	if n > 16 {
		return nil, fmt.Errorf("opt: too many tables (%d)", n)
	}
	leafCands := make([][]*cand, n)
	for i, leaf := range q.Leaves {
		lcs, err := p.leafCandidates(q, leaf)
		if err != nil {
			return nil, err
		}
		// Drop candidates that already violate the constraint.
		var ok []*cand
		for _, lc := range lcs {
			if p.skipConsistency() || !lc.delivered.Violates(q.Constraint) {
				ok = append(ok, lc)
			}
		}
		if len(ok) == 0 {
			return nil, fmt.Errorf("opt: no valid access path for %s", leaf.Binding)
		}
		leafCands[i] = ok
	}
	if n == 1 {
		if q.Leaves[0].Join != exec.JoinInner {
			return nil, fmt.Errorf("opt: query has only an EXISTS subquery table")
		}
		return leafCands[0], nil
	}

	states := map[uint32][]*cand{}
	for i, leaf := range q.Leaves {
		if leaf.Join != exec.JoinInner {
			continue
		}
		states[1<<uint(i)] = prune(leafCands[i])
	}
	full := uint32(1<<uint(n)) - 1
	// Grow states by adding one leaf at a time.
	for size := 1; size < n; size++ {
		for mask, cands := range states {
			if popcount(mask) != size {
				continue
			}
			connectedExists := false
			for j := 0; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					continue
				}
				if p.connected(q, mask, j) {
					connectedExists = true
					break
				}
			}
			for j := 0; j < n; j++ {
				bit := uint32(1 << uint(j))
				if mask&bit != 0 {
					continue
				}
				leaf := q.Leaves[j]
				conn := p.connected(q, mask, j)
				if !conn && connectedExists {
					continue // defer cartesian products
				}
				if leaf.Join != exec.JoinInner {
					if !p.allPartnersIn(q, mask, j) {
						continue
					}
					if !allResidualLeavesIn(q, semiResiduals[leaf.ID], mask, leaf) {
						continue
					}
				}
				newMask := mask | bit
				for _, left := range cands {
					for _, right := range leafCands[j] {
						joined, err := p.joinCands(q, left, right, leaf, semiResiduals[leaf.ID])
						if err != nil {
							return nil, err
						}
						for _, jc := range joined {
							if !p.skipConsistency() && jc.delivered.Violates(q.Constraint) {
								continue
							}
							states[newMask] = append(states[newMask], jc)
						}
					}
				}
			}
			states[mask] = cands
		}
		for mask := range states {
			states[mask] = prune(states[mask])
		}
	}
	result := states[full]
	if len(result) == 0 {
		return nil, fmt.Errorf("opt: join enumeration produced no plan")
	}
	return result, nil
}

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// connected reports whether leaf j has an equi-join edge into the mask.
func (p *Planner) connected(q *Query, mask uint32, j int) bool {
	id := q.Leaves[j].ID
	for _, jp := range q.Joins {
		other := cc.InstanceID(0)
		if jp.LeftLeaf == id {
			other = jp.RightLeaf
		} else if jp.RightLeaf == id {
			other = jp.LeftLeaf
		} else {
			continue
		}
		for i, l := range q.Leaves {
			if l.ID == other && mask&(1<<uint(i)) != 0 {
				return true
			}
		}
	}
	return false
}

// allPartnersIn reports whether every join edge of leaf j lands inside mask.
func (p *Planner) allPartnersIn(q *Query, mask uint32, j int) bool {
	id := q.Leaves[j].ID
	for _, jp := range q.Joins {
		var other cc.InstanceID
		if jp.LeftLeaf == id {
			other = jp.RightLeaf
		} else if jp.RightLeaf == id {
			other = jp.LeftLeaf
		} else {
			continue
		}
		in := false
		for i, l := range q.Leaves {
			if l.ID == other && mask&(1<<uint(i)) != 0 {
				in = true
			}
		}
		if !in {
			return false
		}
	}
	return true
}

func allResidualLeavesIn(q *Query, residuals []sqlparser.Expr, mask uint32, adding *Leaf) bool {
	for _, r := range residuals {
		for i, l := range q.Leaves {
			if l.ID == adding.ID {
				continue
			}
			if exprTouches(r, l.Binding) && mask&(1<<uint(i)) == 0 {
				return false
			}
		}
	}
	return true
}

// prune keeps the cheapest candidates, at most keepPerState with distinct
// (delivered property, interesting order) pairs. Keeping orders distinct is
// what lets an ordered serial scan survive next to a cheaper unordered
// parallel scan of the same data — the classic interesting-orders rule, here
// so merge joins keep their serial ordered inputs.
func prune(cands []*cand) []*cand {
	if len(cands) <= 1 {
		return cands
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
	var out []*cand
	seen := map[string]bool{}
	for _, c := range cands {
		key := c.delivered.String()
		if len(c.order) > 0 {
			key += " ordered:" + strings.Join(c.order, ",")
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
		if len(out) >= keepPerState {
			break
		}
	}
	return out
}

// joinCands builds candidates joining a prefix with one leaf: a hash join
// over any leaf access, plus an index nested-loop join when the leaf has a
// locally stored object with a suitable index (guarded at the cache).
func (p *Planner) joinCands(q *Query, left, right *cand, leaf *Leaf, semiRes []sqlparser.Expr) ([]*cand, error) {
	edges := joinEdges(q, left.schema, leaf)
	var out []*cand
	hj, err := p.hashJoinCand(q, left, right, leaf, edges, semiRes)
	if err != nil {
		return nil, err
	}
	out = append(out, hj)
	nlj, ok, err := p.indexLoopCand(q, left, leaf, edges, semiRes)
	if err != nil {
		return nil, err
	}
	if ok {
		out = append(out, nlj)
	}
	mj, ok, err := p.mergeJoinCand(q, left, leaf, edges, semiRes)
	if err != nil {
		return nil, err
	}
	if ok {
		out = append(out, mj)
	}
	return out, nil
}

// mergeJoinCand builds a sort-merge join when both sides already arrive
// ordered on a join column: the prefix's first ordering column matches one
// edge's prefix side, and some access path for the leaf is ordered on that
// edge's leaf column. Only unguarded accesses keep an ordering, so merge
// joins arise at the back end (and under NoGuards ablations).
func (p *Planner) mergeJoinCand(q *Query, left *cand, leaf *Leaf, edges []joinEdge, semiRes []sqlparser.Expr) (*cand, bool, error) {
	if len(left.order) == 0 || len(edges) == 0 {
		return nil, false, nil
	}
	var keyEdge *joinEdge
	for i := range edges {
		if ref, ok := edges[i].prefixExpr.(*sqlparser.ColumnRef); ok && ref.SQL() == left.order[0] {
			keyEdge = &edges[i]
			break
		}
	}
	if keyEdge == nil {
		return nil, false, nil
	}
	// The leaf side must have an ordered access on keyEdge.leafCol.
	rights, err := p.leafCandidates(q, leaf)
	if err != nil {
		return nil, false, err
	}
	var right *cand
	want := leaf.Binding + "." + keyEdge.leafCol
	for _, rc := range rights {
		if len(rc.order) > 0 && rc.order[0] == want {
			if right == nil || rc.cost < right.cost {
				right = rc
			}
		}
	}
	if right == nil {
		return nil, false, nil
	}
	outSchema := left.schema
	if leaf.Join == exec.JoinInner {
		outSchema = exec.Concat(left.schema, right.schema)
	}
	outRows := estimateJoinOut(left.rows, right.rows, leaf, edges)
	leftBuild, rightBuild := left.build, right.build
	leftSchema, rightSchema := left.schema, right.schema
	kind := leaf.Join
	extraEdges := make([]joinEdge, 0, len(edges)-1)
	for i := range edges {
		if &edges[i] != keyEdge {
			extraEdges = append(extraEdges, edges[i])
		}
	}
	residuals := append([]sqlparser.Expr(nil), semiRes...)
	for _, e := range extraEdges {
		residuals = append(residuals, &sqlparser.BinaryExpr{
			Op:    sqlparser.OpEQ,
			Left:  e.prefixExpr,
			Right: &sqlparser.ColumnRef{Table: leaf.Binding, Column: e.leafCol},
		})
	}
	edge := *keyEdge
	build := func() (exec.Operator, error) {
		l, err := leftBuild()
		if err != nil {
			return nil, err
		}
		r, err := rightBuild()
		if err != nil {
			return nil, err
		}
		lk, err := exec.Compile(edge.prefixExpr, leftSchema)
		if err != nil {
			return nil, err
		}
		rk, err := exec.Compile(&sqlparser.ColumnRef{Table: leaf.Binding, Column: edge.leafCol}, rightSchema)
		if err != nil {
			return nil, err
		}
		var res exec.Compiled
		if pred := andAll(residuals); pred != nil {
			res, err = exec.Compile(pred, exec.Concat(leftSchema, rightSchema))
			if err != nil {
				return nil, err
			}
		}
		return exec.NewMergeJoin(l, r, []exec.Compiled{lk}, []exec.Compiled{rk}, res, kind), nil
	}
	// Merge advances both sorted streams once; per-row work is well below a
	// generic operator hop (no hashing, no seeks).
	cost := left.cost + right.cost + (left.rows+right.rows)*costRow*0.5 + outRows*costRow
	return &cand{
		build:        build,
		schema:       outSchema,
		cost:         cost,
		rows:         outRows,
		delivered:    cc.Join(left.delivered, right.delivered),
		shape:        fmt.Sprintf("MergeJoin(%s, %s)", left.shape, right.shape),
		usesLocal:    left.usesLocal || right.usesLocal,
		guards:       left.guards + right.guards,
		localLeaves:  left.localLeaves + right.localLeaves,
		remoteLeaves: left.remoteLeaves + right.remoteLeaves,
		order:        left.order,
		dop:          maxDop(left.dop, right.dop),
	}, true, nil
}

// joinEdge is one equi-join pair usable between the prefix and the leaf.
type joinEdge struct {
	prefixExpr sqlparser.Expr // column on the prefix side
	leafCol    string
}

func joinEdges(q *Query, prefix *exec.Schema, leaf *Leaf) []joinEdge {
	var out []joinEdge
	for _, jp := range q.Joins {
		if jp.LeftLeaf == leaf.ID {
			other := q.Leaf(jp.RightLeaf)
			if prefix.Lookup(other.Binding, jp.RightCol) >= 0 {
				out = append(out, joinEdge{
					prefixExpr: &sqlparser.ColumnRef{Table: other.Binding, Column: jp.RightCol},
					leafCol:    jp.LeftCol,
				})
			}
		} else if jp.RightLeaf == leaf.ID {
			other := q.Leaf(jp.LeftLeaf)
			if prefix.Lookup(other.Binding, jp.LeftCol) >= 0 {
				out = append(out, joinEdge{
					prefixExpr: &sqlparser.ColumnRef{Table: other.Binding, Column: jp.LeftCol},
					leafCol:    jp.RightCol,
				})
			}
		}
	}
	return out
}

func (p *Planner) hashJoinCand(q *Query, left, right *cand, leaf *Leaf, edges []joinEdge, semiRes []sqlparser.Expr) (*cand, error) {
	outSchema := left.schema
	if leaf.Join == exec.JoinInner {
		outSchema = exec.Concat(left.schema, right.schema)
	}
	outRows := estimateJoinOut(left.rows, right.rows, leaf, edges)
	leftBuild, rightBuild := left.build, right.build
	leftSchema, rightSchema := left.schema, right.schema
	kind := leaf.Join
	residual := andAll(semiRes)
	build := func() (exec.Operator, error) {
		l, err := leftBuild()
		if err != nil {
			return nil, err
		}
		r, err := rightBuild()
		if err != nil {
			return nil, err
		}
		var lk, rk []exec.Compiled
		var lc, rc []int
		ordsOK := true
		for _, e := range edges {
			cl, err := exec.Compile(e.prefixExpr, leftSchema)
			if err != nil {
				return nil, err
			}
			cr, err := exec.Compile(&sqlparser.ColumnRef{Table: leaf.Binding, Column: e.leafCol}, rightSchema)
			if err != nil {
				return nil, err
			}
			lk = append(lk, cl)
			rk = append(rk, cr)
			// Key expressions here are always plain column references, so
			// pass their ordinals for closure-free key extraction.
			if ref, ok := e.prefixExpr.(*sqlparser.ColumnRef); ok {
				if ord := leftSchema.Lookup(ref.Table, ref.Column); ord >= 0 {
					lc = append(lc, ord)
				} else {
					ordsOK = false
				}
			} else {
				ordsOK = false
			}
			if ord := rightSchema.Lookup(leaf.Binding, e.leafCol); ord >= 0 {
				rc = append(rc, ord)
			} else {
				ordsOK = false
			}
		}
		var res exec.Compiled
		if residual != nil {
			joinedSchema := exec.Concat(leftSchema, rightSchema)
			res, err = exec.Compile(residual, joinedSchema)
			if err != nil {
				return nil, err
			}
		}
		hj := exec.NewHashJoin(l, r, lk, rk, res, kind)
		if ordsOK {
			hj.LeftKeyCols, hj.RightKeyCols = lc, rc
		}
		return hj, nil
	}
	cost := left.cost + right.cost + right.rows*costHashBuild + left.rows*costHashProbe + outRows*costRow
	return &cand{
		build:        build,
		schema:       outSchema,
		cost:         cost,
		rows:         outRows,
		delivered:    cc.Join(left.delivered, right.delivered),
		shape:        fmt.Sprintf("HashJoin(%s, %s)", left.shape, right.shape),
		usesLocal:    left.usesLocal || right.usesLocal,
		guards:       left.guards + right.guards,
		localLeaves:  left.localLeaves + right.localLeaves,
		remoteLeaves: left.remoteLeaves + right.remoteLeaves,
		order:        left.order, // probe rows stream through in order
		dop:          maxDop(left.dop, right.dop),
	}, nil
}

func estimateJoinOut(leftRows, rightRows float64, leaf *Leaf, edges []joinEdge) float64 {
	if leaf.Join != exec.JoinInner {
		return leftRows * 0.7
	}
	if len(edges) == 0 {
		return leftRows * rightRows
	}
	return joinRows(leftRows, rightRows, leaf, edges[0].leafCol)
}

// indexLoopCand builds an index nested-loop join: the inner is a locally
// stored object (base table at the back end; a matching view at the cache)
// with an index whose leading columns are join columns. At the cache the
// whole join is wrapped in a SwitchUnion: the local branch runs the NLJ
// against the view; the remote branch hash-joins the prefix with a remote
// fetch of the leaf.
func (p *Planner) indexLoopCand(q *Query, left *cand, leaf *Leaf, edges []joinEdge, semiRes []sqlparser.Expr) (*cand, bool, error) {
	if len(edges) == 0 {
		return nil, false, nil
	}
	residualPreds := append([]sqlparser.Expr(nil), leaf.Preds...)
	residualPreds = append(residualPreds, semiRes...)

	buildNLJ := func(tbl *storage.Table, idxName string, keyEdges []joinEdge) func() (exec.Operator, error) {
		leftBuild, leftSchema := left.build, left.schema
		innerSch := storedSchema(tbl.Def(), leaf.Binding)
		kind := leaf.Join
		return func() (exec.Operator, error) {
			l, err := leftBuild()
			if err != nil {
				return nil, err
			}
			keys := make([]exec.Compiled, len(keyEdges))
			for i, e := range keyEdges {
				keys[i], err = exec.Compile(e.prefixExpr, leftSchema)
				if err != nil {
					return nil, err
				}
			}
			var res exec.Compiled
			allRes := residualPreds
			// Join-edge columns beyond the index prefix become residual.
			for _, e := range edges[len(keyEdges):] {
				allRes = append(allRes, &sqlparser.BinaryExpr{
					Op:    sqlparser.OpEQ,
					Left:  e.prefixExpr,
					Right: &sqlparser.ColumnRef{Table: leaf.Binding, Column: e.leafCol},
				})
			}
			if pred := andAll(allRes); pred != nil {
				res, err = exec.Compile(pred, exec.Concat(leftSchema, innerSch))
				if err != nil {
					return nil, err
				}
			}
			nlj := exec.NewIndexLoopJoin(l, tbl, idxName, innerSch, keys, res, kind)
			if kind != exec.JoinInner {
				return nlj, nil
			}
			return projectTo(nlj, exec.Concat(leftSchema, leafSchema(leaf)))
		}
	}

	pickIndex := func(def *catalog.Table) (string, []joinEdge) {
		var bestIdx string
		var bestEdges []joinEdge
		for _, idx := range def.Indexes {
			var matched []joinEdge
			for _, idxCol := range idx.Columns {
				found := false
				for _, e := range edges {
					if e.leafCol == idxCol {
						matched = append(matched, e)
						found = true
						break
					}
				}
				if !found {
					break
				}
			}
			if len(matched) > len(bestEdges) {
				bestEdges = matched
				bestIdx = idx.Name
			}
		}
		return bestIdx, bestEdges
	}

	outSchema := left.schema
	if leaf.Join == exec.JoinInner {
		outSchema = exec.Concat(left.schema, leafSchema(leaf))
	}
	outRows := estimateJoinOut(left.rows, leafRows(leaf), leaf, edges)
	matchPerOuter := outRows / math.Max(left.rows, 1)

	if tbl := p.Site.LocalTable(leaf.Table.Name); tbl != nil {
		idxName, keyEdges := pickIndex(tbl.Def())
		if idxName == "" {
			return nil, false, nil
		}
		cost := left.cost + left.rows*(costSeek+matchPerOuter*costScanRow) + outRows*costRow
		return &cand{
			build:        buildNLJ(tbl, idxName, keyEdges),
			schema:       outSchema,
			cost:         cost,
			rows:         outRows,
			delivered:    cc.Join(left.delivered, cc.DeliverScan(catalog.MasterRegionID, leaf.ID)),
			shape:        fmt.Sprintf("NLJ(%s, %s)", left.shape, leaf.Table.Name),
			usesLocal:    left.usesLocal,
			guards:       left.guards,
			localLeaves:  left.localLeaves + 1,
			remoteLeaves: left.remoteLeaves,
			order:        left.order,
			dop:          left.dop,
		}, true, nil
	}
	if p.Site.IsBackend() {
		return nil, false, nil
	}

	if p.Opts.NoViews {
		return nil, false, nil
	}
	// Cache: NLJ into a matching local view, guarded.
	for _, view := range p.Site.Cat.ViewsOf(leaf.Table.Name) {
		if !viewMatches(view, leaf) {
			continue
		}
		vtbl := p.Site.LocalView(view.Name)
		if vtbl == nil {
			continue
		}
		region := p.Site.Cat.Region(view.RegionID)
		if region == nil {
			continue
		}
		bound, constrained := q.Constraint.BoundFor(leaf.ID)
		if !constrained {
			bound = time.Duration(math.MaxInt64)
		}
		if !p.Opts.NoGuards && bound < region.MinCurrency() {
			continue
		}
		idxName, keyEdges := pickIndex(vtbl.Def())
		if idxName == "" {
			continue
		}
		localBuild := buildNLJ(vtbl, idxName, keyEdges)
		localCost := left.cost + left.rows*(costSeek+matchPerOuter*costScanRow) + outRows*costRow
		localDelivered := cc.Join(left.delivered, cc.DeliverScan(view.RegionID, leaf.ID))
		if p.Opts.NoGuards {
			return &cand{
				build:        localBuild,
				schema:       outSchema,
				cost:         localCost,
				rows:         outRows,
				delivered:    localDelivered,
				shape:        fmt.Sprintf("NLJ(%s, %s)", left.shape, view.Name),
				usesLocal:    true,
				guards:       left.guards,
				localLeaves:  left.localLeaves + 1,
				remoteLeaves: left.remoteLeaves,
				dop:          left.dop,
			}, true, nil
		}
		// Remote fall-back branch: hash join with a remote fetch.
		remoteLeaf := p.remoteLeafCand(leaf, leafSchema(leaf))
		hj, err := p.hashJoinCand(q, left, remoteLeaf, leaf, edges, semiRes)
		if err != nil {
			return nil, false, err
		}
		guard := p.currencyGuard(view.RegionID, bound)
		label := fmt.Sprintf("GuardJoin(NLJ(%s, %s)|%s)", left.shape, view.Name, hj.shape)
		hjBuild := hj.build
		prob := cc.LocalProbability(bound, region.UpdateDelay, region.UpdateInterval)
		if !constrained {
			prob = 1
		}
		return &cand{
			build: func() (exec.Operator, error) {
				localOp, err := localBuild()
				if err != nil {
					return nil, err
				}
				remOp, err := hjBuild()
				if err != nil {
					return nil, err
				}
				return &exec.SwitchUnion{Children: []exec.Operator{localOp, remOp}, Selector: guard, Label: label, Region: view.RegionID, Staleness: p.stalenessProbe(view.RegionID), Bound: obs.NormalizeBound(bound)}, nil
			},
			schema:       outSchema,
			cost:         prob*localCost + (1-prob)*hj.cost + costGuard,
			rows:         outRows,
			delivered:    cc.SwitchUnion(localDelivered, hj.delivered),
			shape:        label,
			usesLocal:    true,
			guards:       left.guards + 1,
			localLeaves:  left.localLeaves + 1,
			remoteLeaves: left.remoteLeaves,
			dop:          maxDop(left.dop, hj.dop),
		}, true, nil
	}
	return nil, false, nil
}

// ---- finishing ----

// finish layers residual filters, aggregation, distinct, ordering, limit and
// the final projection on a join candidate.
func (p *Planner) finish(q *Query, jc *cand, innerResiduals []sqlparser.Expr) (*cand, error) {
	outSchema, err := outputSchema(q)
	if err != nil {
		return nil, err
	}
	joinBuild, joinSchema := jc.build, jc.schema
	rows := jc.rows
	cost := jc.cost
	if len(innerResiduals) > 0 {
		rows *= 0.5
	}
	if len(q.Aggs) > 0 || len(q.GroupBy) > 0 {
		cost += rows * costRow * 2
		if len(q.GroupBy) > 0 {
			rows *= 0.1
		} else {
			rows = 1
		}
	}
	if len(q.OrderBy) > 0 && rows > 1 {
		cost += rows * costSort * math.Log2(rows+1)
	}
	if q.Top > 0 && rows > float64(q.Top) {
		rows = float64(q.Top)
	}
	cost += rows * costRow

	build := func() (exec.Operator, error) {
		op, err := joinBuild()
		if err != nil {
			return nil, err
		}
		schema := joinSchema
		if pred := andAll(innerResiduals); pred != nil {
			c, err := exec.Compile(pred, schema)
			if err != nil {
				return nil, err
			}
			f := &exec.Filter{Child: op, Pred: c}
			if k, ok := exec.CompileKernel(pred, schema); ok {
				f.Kernel = k
			}
			op = f
		}
		if len(q.Aggs) > 0 || len(q.GroupBy) > 0 {
			op, schema, err = buildAggregate(q, op, schema)
			if err != nil {
				return nil, err
			}
			if q.Having != nil {
				c, err := exec.Compile(q.Having, schema)
				if err != nil {
					return nil, err
				}
				f := &exec.Filter{Child: op, Pred: c}
				if k, ok := exec.CompileKernel(q.Having, schema); ok {
					f.Kernel = k
				}
				op = f
			}
		}
		if len(q.OrderBy) > 0 {
			keys := make([]exec.Compiled, len(q.OrderBy))
			descs := make([]bool, len(q.OrderBy))
			for i, o := range q.OrderBy {
				keys[i], err = exec.Compile(o.Expr, schema)
				if err != nil {
					return nil, err
				}
				descs[i] = o.Desc
			}
			op = &exec.Sort{Child: op, Keys: keys, Desc: descs}
		}
		if q.Top > 0 {
			op = &exec.Limit{Child: op, N: q.Top}
		}
		exprs := make([]exec.Compiled, len(q.Items))
		for i, item := range q.Items {
			exprs[i], err = exec.Compile(item.Expr, schema)
			if err != nil {
				return nil, err
			}
		}
		op = &exec.Project{Child: op, Exprs: exprs, Out: outSchema}
		if q.Distinct {
			op = &exec.Distinct{Child: op}
		}
		return op, nil
	}
	return &cand{
		build:        build,
		schema:       outSchema,
		cost:         cost,
		rows:         rows,
		delivered:    jc.delivered,
		shape:        jc.shape,
		usesLocal:    jc.usesLocal,
		guards:       jc.guards,
		localLeaves:  jc.localLeaves,
		remoteLeaves: jc.remoteLeaves,
		dop:          jc.dop,
	}, nil
}

// buildAggregate constructs the Aggregate operator and its output schema:
// group columns (keeping their bindings) followed by #agg.aggN columns.
func buildAggregate(q *Query, child exec.Operator, schema *exec.Schema) (exec.Operator, *exec.Schema, error) {
	var groupExprs []exec.Compiled
	var outCols []exec.Col
	for _, g := range q.GroupBy {
		ref, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			return nil, nil, fmt.Errorf("opt: GROUP BY supports plain columns, got %s", g.SQL())
		}
		c, err := exec.Compile(g, schema)
		if err != nil {
			return nil, nil, err
		}
		groupExprs = append(groupExprs, c)
		idx := schema.Lookup(ref.Table, ref.Column)
		outCols = append(outCols, schema.Cols[idx])
	}
	var specs []exec.AggSpec
	for _, ag := range q.Aggs {
		spec := exec.AggSpec{Func: ag.Func, Star: ag.Star}
		if ag.Arg != nil {
			c, err := exec.Compile(ag.Arg, schema)
			if err != nil {
				return nil, nil, err
			}
			spec.Arg = c
		}
		specs = append(specs, spec)
		kind := sqltypes.KindFloat
		if ag.Func == "COUNT" {
			kind = sqltypes.KindInt
		}
		outCols = append(outCols, exec.Col{Binding: aggBinding, Name: ag.Ref.Column, Kind: kind})
	}
	out := exec.NewSchema(outCols...)
	return &exec.Aggregate{Child: child, GroupBy: groupExprs, Aggs: specs, Out: out}, out, nil
}

// outputSchema derives the final result schema from the projection items.
func outputSchema(q *Query) (*exec.Schema, error) {
	cols := make([]exec.Col, len(q.Items))
	for i, item := range q.Items {
		name := item.Alias
		kind := sqltypes.KindFloat
		if ref, ok := item.Expr.(*sqlparser.ColumnRef); ok {
			if name == "" {
				name = ref.Column
			}
			if ref.Table != aggBinding {
				if l := leafByBinding(q, ref.Table); l != nil {
					if c := l.Table.Column(ref.Column); c != nil {
						kind = c.Type
					}
				}
			}
		} else if lit, ok := item.Expr.(*sqlparser.Literal); ok {
			kind = lit.Val.Kind()
		}
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		cols[i] = exec.Col{Name: name, Kind: kind}
	}
	return exec.NewSchema(cols...), nil
}

func leafByBinding(q *Query, binding string) *Leaf {
	for _, l := range q.Leaves {
		if l.Binding == binding {
			return l
		}
	}
	return nil
}

// wholeRemoteCand ships the entire query to the back end (plan 1).
func (p *Planner) wholeRemoteCand(q *Query) *cand {
	outSchema, err := outputSchema(q)
	if err != nil {
		outSchema = exec.NewSchema()
	}
	sql := sqlparser.SelectSQL(stripCurrency(q.Stmt))
	remoteExec := p.Site.Remote
	rows, _ := estimateQueryOutput(q)
	var ids []cc.InstanceID
	for _, l := range q.Leaves {
		ids = append(ids, l.ID)
	}
	return &cand{
		build: func() (exec.Operator, error) {
			return &exec.Remote{
				SQL: sql,
				Out: outSchema,
				Fetch: func(*exec.EvalContext) ([]sqltypes.Row, error) {
					return remoteExec.Query(sql)
				},
			}, nil
		},
		schema:       outSchema,
		cost:         wholeRemoteCost(q),
		rows:         rows,
		delivered:    cc.DeliverScan(catalog.MasterRegionID, ids...),
		shape:        "Remote",
		remoteLeaves: len(q.Leaves),
	}
}

// stripCurrency removes currency clauses before shipping a query to the
// back end (whose data trivially satisfies them).
func stripCurrency(sel *sqlparser.SelectStmt) *sqlparser.SelectStmt {
	out := *sel
	out.Currency = nil
	return &out
}

// leafFetchSQL builds the remote query fetching one leaf's needed columns.
func leafFetchSQL(leaf *Leaf) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, col := range leaf.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(leaf.Binding + "." + col)
	}
	b.WriteString(" FROM " + leaf.Table.Name)
	if leaf.Binding != leaf.Table.Name {
		b.WriteString(" " + leaf.Binding)
	}
	if pred := andAll(leaf.Preds); pred != nil {
		b.WriteString(" WHERE " + pred.SQL())
	}
	return b.String()
}
