package opt

import (
	"strings"
	"testing"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// mergeFixture: Customer clustered on c_custkey, Orders clustered on
// (o_custkey, o_orderkey) — both ordered by the join column, the paper's
// TPC-D layout — so the back end should pick a merge join for the full
// join.
func mergeFixture(t *testing.T) *Planner {
	t.Helper()
	cat := catalog.New()
	cust := &catalog.Table{
		Name: "Customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: sqltypes.KindInt, NotNull: true},
			{Name: "c_name", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"c_custkey"},
	}
	orders := &catalog.Table{
		Name: "Orders",
		Columns: []catalog.Column{
			{Name: "o_custkey", Type: sqltypes.KindInt, NotNull: true},
			{Name: "o_orderkey", Type: sqltypes.KindInt, NotNull: true},
			{Name: "o_totalprice", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"o_custkey", "o_orderkey"},
	}
	for _, def := range []*catalog.Table{cust, orders} {
		if err := cat.AddTable(def); err != nil {
			t.Fatal(err)
		}
	}
	tables := map[string]*storage.Table{
		"Customer": storage.NewTable(cust),
		"Orders":   storage.NewTable(orders),
	}
	for i := int64(1); i <= 500; i++ {
		tables["Customer"].Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString("c")})
		for o := int64(0); o < 10; o++ {
			tables["Orders"].Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i*100 + o), sqltypes.NewFloat(1)})
		}
	}
	for name, tbl := range tables {
		def := cat.Table(name)
		stats := catalog.BuildStats(def, func(yield func(sqltypes.Row)) {
			tbl.Scan(func(r sqltypes.Row) bool { yield(r); return true })
		})
		def.Stats.Set(stats.RowCount, stats.AvgRowBytes, stats.Columns)
	}
	return NewPlanner(&Site{
		Cat:        cat,
		LocalTable: func(n string) *storage.Table { return tables[n] },
		LocalView:  func(string) *storage.Table { return nil },
		Clock:      vclock.NewVirtual(),
	})
}

func TestBackendPicksMergeJoinForClusteredJoin(t *testing.T) {
	p := mergeFixture(t)
	plan, rows := planAndRun(t, p,
		"SELECT C.c_custkey, O.o_totalprice FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey")
	if !strings.Contains(plan.Shape, "MergeJoin") {
		t.Fatalf("expected merge join for co-clustered tables, got %s", plan.Shape)
	}
	if rows != 5000 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestSelectiveJoinStillPrefersNLJOrSeek(t *testing.T) {
	p := mergeFixture(t)
	plan, rows := planAndRun(t, p,
		"SELECT O.o_totalprice FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey WHERE C.c_custkey = 7")
	// A point join must not pay two full ordered scans.
	if strings.Contains(plan.Shape, "MergeJoin") {
		t.Fatalf("merge join chosen for a point join: %s", plan.Shape)
	}
	if rows != 10 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestMergeJoinSemiAtBackend(t *testing.T) {
	p := mergeFixture(t)
	plan, rows := planAndRun(t, p,
		`SELECT C.c_custkey FROM Customer C
		 WHERE EXISTS (SELECT 1 FROM Orders O WHERE O.o_custkey = C.c_custkey AND O.o_totalprice > 0)`)
	if rows != 500 {
		t.Fatalf("rows = %d (plan %s)", rows, plan.Shape)
	}
}

func planAndRun(t *testing.T, p *Planner, sql string) (*Plan, int) {
	t.Helper()
	sel, err := parseSelectHelper(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := p.PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runPlanHelper(plan)
	if err != nil {
		t.Fatal(err)
	}
	return plan, res
}

func parseSelectHelper(sql string) (*sqlparser.SelectStmt, error) {
	return sqlparser.ParseSelect(sql)
}

func runPlanHelper(plan *Plan) (int, error) {
	res, err := exec.Run(plan.Root, &exec.EvalContext{Now: vclock.Epoch}, 0)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}
