package opt

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/vclock"
)

// TestSemiJoinResidualAcrossLeaves exercises splitResiduals and the
// enumeration constraints: a non-equi predicate linking the outer block and
// an EXISTS subquery must be evaluated inside the semi join.
func TestSemiJoinResidualAcrossLeaves(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, `SELECT B.isbn FROM Books B
		WHERE EXISTS (SELECT 1 FROM Reviews R WHERE R.isbn = B.isbn AND R.rating > B.isbn)`)
	// rating in {1,2,3}: only isbn 1 (ratings up to 3 > 1) and isbn 2
	// (rating 3 > 2) qualify.
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestResidualSpanningTwoExistsRejected(t *testing.T) {
	f := newBackendFixture(t)
	sel, err := sqlparser.ParseSelect(`SELECT B.isbn FROM Books B
		WHERE EXISTS (SELECT 1 FROM Reviews R WHERE R.rating > 0)
		AND EXISTS (SELECT 1 FROM Reviews R2 WHERE R2.rating > R.rating)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.plan.PlanSelect(sel); err == nil {
		t.Fatal("predicate across two EXISTS subqueries accepted")
	}
}

// TestMultiLeafResidualFiltersAtTop exercises non-equi predicates between
// inner leaves (kept as a top-level filter).
func TestMultiLeafResidualFiltersAtTop(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, `SELECT B.isbn, R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE B.isbn <= 5 AND R.rating * 2 > B.isbn`)
	// For isbn i, ratings {1,2,3}: count ratings with 2r > i.
	want := 0
	for i := 1; i <= 5; i++ {
		for r := 1; r <= 3; r++ {
			if 2*r > i {
				want++
			}
		}
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestQueryStringHelpers(t *testing.T) {
	f := newBackendFixture(t)
	sel, _ := sqlparser.ParseSelect("SELECT B.title FROM Books B WHERE B.isbn = 1")
	plan, q, err := f.plan.PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.binding(q.Leaves[0].ID); got != "B" {
		t.Fatalf("binding = %q", got)
	}
	if got := q.binding(999); !strings.Contains(got, "?") {
		t.Fatalf("missing binding = %q", got)
	}
	if !strings.Contains(plan.String(), "cost=") {
		t.Fatalf("Plan.String = %q", plan.String())
	}
}

func TestExprTouches(t *testing.T) {
	sel, _ := sqlparser.ParseSelect(
		"SELECT 1 FROM t WHERE a.x + 1 > 2 AND b.y IN (1, 2) AND NOT (c.z IS NULL) AND d.w BETWEEN 1 AND 2 AND ABS(e.v) = 1")
	for _, c := range []struct {
		binding string
		want    bool
	}{
		{"a", true}, {"b", true}, {"c", true}, {"d", true}, {"e", true}, {"zz", false},
	} {
		if got := exprTouches(sel.Where, c.binding); got != c.want {
			t.Errorf("exprTouches(%s) = %v", c.binding, got)
		}
	}
}

func TestRewriteExprCoversAllForms(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT -B.price, ABS(B.price) FROM Books B
		WHERE (B.price + 1) * 2 / 2 - 1 > 0
		AND B.price BETWEEN 1 AND 100
		AND B.isbn IN (1, 2, 3)
		AND B.title IS NOT NULL
		AND NOT (B.price = 13)`)
	if len(q.Leaves[0].Preds) != 5 {
		t.Fatalf("preds = %d", len(q.Leaves[0].Preds))
	}
	// Round trip all predicates and items through SQL text.
	for _, p := range q.Leaves[0].Preds {
		if _, err := sqlparser.ParseSelect("SELECT 1 FROM Books B WHERE " + p.SQL()); err != nil {
			t.Fatalf("pred %q does not re-parse: %v", p.SQL(), err)
		}
	}
}

func TestCheckGroupedRejectsUngroupedArithmetic(t *testing.T) {
	cat := bookstoreCatalog(t)
	sel, _ := sqlparser.ParseSelect("SELECT B.price + 1 FROM Books B GROUP BY B.isbn")
	if _, err := Algebrize(sel, cat); err == nil {
		t.Fatal("ungrouped column in arithmetic accepted")
	}
	// Grouped arithmetic and literals are fine.
	sel, _ = sqlparser.ParseSelect("SELECT B.isbn + 1, 7, -B.isbn, COUNT(*) FROM Books B GROUP BY B.isbn")
	if _, err := Algebrize(sel, cat); err != nil {
		t.Fatal(err)
	}
}

func TestExtractAggsInsideExpressions(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT SUM(R.rating) / COUNT(*) AS ratio, -MAX(R.rating)
		FROM Reviews R GROUP BY R.isbn HAVING NOT (SUM(R.rating) = 0)`)
	if len(q.Aggs) != 3 { // SUM, COUNT, MAX (SUM reused by HAVING)
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
}

func TestAggregateWrongArity(t *testing.T) {
	cat := bookstoreCatalog(t)
	sel, _ := sqlparser.ParseSelect("SELECT SUM(R.rating, R.isbn) FROM Reviews R")
	if _, err := Algebrize(sel, cat); err == nil {
		t.Fatal("two-argument SUM accepted")
	}
}

func TestCurrencyGuardFallbackWithoutHeartbeatTable(t *testing.T) {
	// A Site wired without a heartbeat table uses the RegionClock fallback.
	regions := fakeRegions{1: vclock.Epoch.Add(100 * time.Second)}
	p := &Planner{Site: &Site{Regions: regions}}
	now := vclock.Epoch.Add(105 * time.Second)
	ctx := &evalCtx{now: now}

	sel := p.currencyGuard(1, 10*time.Second)
	if got, _ := sel(ctx.ctx()); got != 0 {
		t.Fatal("5s stale within 10s should be local")
	}
	sel = p.currencyGuard(1, 2*time.Second)
	if got, _ := sel(ctx.ctx()); got != 1 {
		t.Fatal("5s stale beyond 2s should be remote")
	}
	sel = p.currencyGuard(9, time.Hour)
	if got, _ := sel(ctx.ctx()); got != 1 {
		t.Fatal("unsynced region should be remote")
	}
	// Timeline floor.
	p.Opts.MinSync = now
	sel = p.currencyGuard(1, time.Hour)
	if got, _ := sel(ctx.ctx()); got != 1 {
		t.Fatal("floor above sync should be remote")
	}
}

type fakeRegions map[int]time.Time

func (f fakeRegions) LastSync(id int) (time.Time, bool) {
	ts, ok := f[id]
	return ts, ok
}

type evalCtx struct{ now time.Time }

func (e *evalCtx) ctx() *exec.EvalContext { return &exec.EvalContext{Now: e.now} }

// TestFourTableJoinEnumeration validates the DP enumerator on a longer
// chain: Books -> Reviews -> plus two EXISTS filters.
func TestFourTableJoinEnumeration(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, `SELECT B.isbn, R.rating
		FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE B.isbn <= 20
		AND EXISTS (SELECT 1 FROM Reviews R2 WHERE R2.isbn = B.isbn AND R2.rating = 1)
		AND EXISTS (SELECT 1 FROM Books B2 WHERE B2.isbn = B.isbn AND B2.price > 0)`)
	// Every book has a rating-1 review and positive price: 20 books x 3.
	if len(rows) != 60 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestCartesianProductFallback: no join predicate at all still plans (as a
// keyless hash join).
func TestCartesianProductFallback(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, "SELECT B.isbn FROM Books B, Reviews R WHERE B.isbn = 1 AND R.review_id = 10")
	if len(rows) != 1 {
		t.Fatalf("cartesian rows = %d", len(rows))
	}
}
