package opt

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/cc"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
)

// bookstoreCatalog builds the paper's Section 2 example schema.
func bookstoreCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tables := []*catalog.Table{
		{
			Name: "Books",
			Columns: []catalog.Column{
				{Name: "isbn", Type: sqltypes.KindInt, NotNull: true},
				{Name: "title", Type: sqltypes.KindString},
				{Name: "price", Type: sqltypes.KindFloat},
			},
			PrimaryKey: []string{"isbn"},
		},
		{
			Name: "Reviews",
			Columns: []catalog.Column{
				{Name: "review_id", Type: sqltypes.KindInt, NotNull: true},
				{Name: "isbn", Type: sqltypes.KindInt, NotNull: true},
				{Name: "rating", Type: sqltypes.KindInt},
			},
			PrimaryKey: []string{"review_id"},
		},
		{
			Name: "Sales",
			Columns: []catalog.Column{
				{Name: "sale_id", Type: sqltypes.KindInt, NotNull: true},
				{Name: "isbn", Type: sqltypes.KindInt, NotNull: true},
				{Name: "year", Type: sqltypes.KindInt},
			},
			PrimaryKey: []string{"sale_id"},
		},
	}
	for _, tb := range tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func algebrize(t *testing.T, cat *catalog.Catalog, sql string) *Query {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Algebrize(sel, cat)
	if err != nil {
		t.Fatalf("algebrize %q: %v", sql, err)
	}
	return q
}

func TestAlgebrizeSimpleJoin(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title, R.rating
		FROM Books B JOIN Reviews R ON B.isbn = R.isbn WHERE B.price > 10`)
	if len(q.Leaves) != 2 {
		t.Fatalf("leaves = %d", len(q.Leaves))
	}
	if len(q.Joins) != 1 || q.Joins[0].LeftCol != "isbn" {
		t.Fatalf("joins = %+v", q.Joins)
	}
	b := q.Leaves[0]
	if b.Binding != "B" || len(b.Preds) != 1 {
		t.Fatalf("B leaf = %+v", b)
	}
	// Needed columns include join, output and predicate columns plus PK.
	cols := strings.Join(b.Cols, ",")
	if !strings.Contains(cols, "isbn") || !strings.Contains(cols, "title") || !strings.Contains(cols, "price") {
		t.Fatalf("B cols = %v", b.Cols)
	}
}

func TestAlgebrizeDefaultConstraint(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, "SELECT B.title FROM Books B, Reviews R WHERE B.isbn = R.isbn")
	if q.HasCurrencyClause {
		t.Fatal("no clause expected")
	}
	if len(q.Constraint.Classes) != 1 {
		t.Fatalf("default constraint = %v", q.Constraint)
	}
	cl := q.Constraint.Classes[0]
	if cl.Bound != 0 || len(cl.Set) != 2 {
		t.Fatalf("default class = %+v", cl)
	}
}

// TestAlgebrizeE1E2 covers Figure 2.1's E1/E2 clause semantics.
func TestAlgebrizeE1E2(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		CURRENCY 10 MIN ON (B, R)`)
	if len(q.Constraint.Classes) != 1 || q.Constraint.Classes[0].Bound != 10*time.Minute {
		t.Fatalf("E1 constraint = %v", q.Constraint)
	}
	q = algebrize(t, cat, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		CURRENCY 10 MIN ON (B), 30 MIN ON (R)`)
	if len(q.Constraint.Classes) != 2 {
		t.Fatalf("E2 constraint = %v", q.Constraint)
	}
}

// TestAlgebrizeQ2DerivedTable covers Figure 2.2's Q2: the derived table's
// constraint merges with the outer clause naming the derived alias,
// producing the paper's "5 min (S, B, R)".
func TestAlgebrizeQ2DerivedTable(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT T.title, S.year
		FROM Sales S JOIN (
			SELECT B.isbn, B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
			CURRENCY 10 MIN ON (B, R)
		) T ON S.isbn = T.isbn
		CURRENCY 5 MIN ON (S, T)`)
	if len(q.Leaves) != 3 {
		t.Fatalf("leaves = %d", len(q.Leaves))
	}
	if len(q.Constraint.Classes) != 1 {
		t.Fatalf("constraint = %v", q.Constraint)
	}
	cl := q.Constraint.Classes[0]
	if cl.Bound != 5*time.Minute || len(cl.Set) != 3 {
		t.Fatalf("normalized class = %+v, want 5 min on {S,B,R}", cl)
	}
}

// TestAlgebrizeQ3Exists covers Figure 2.2's Q3: an EXISTS subquery whose
// currency clause references the outer table B, merging S and B (and
// transitively R) into one class.
func TestAlgebrizeQ3Exists(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE EXISTS (SELECT 1 FROM Sales S WHERE S.isbn = B.isbn AND S.year = 2003
			CURRENCY 10 MIN ON (S, B))
		CURRENCY 10 MIN ON (B, R)`)
	if len(q.Leaves) != 3 {
		t.Fatalf("leaves = %d", len(q.Leaves))
	}
	var semi *Leaf
	for _, l := range q.Leaves {
		if l.Join == exec.JoinSemi {
			semi = l
		}
	}
	if semi == nil || semi.Binding != "S" {
		t.Fatal("Sales should be a semi-join leaf")
	}
	if len(semi.Preds) != 1 {
		t.Fatalf("S preds = %v", semi.Preds)
	}
	// B, R, S must form a single consistency class.
	if len(q.Constraint.Classes) != 1 || len(q.Constraint.Classes[0].Set) != 3 {
		t.Fatalf("constraint = %v", q.Constraint)
	}
}

func TestAlgebrizeInSubquery(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B
		WHERE B.isbn IN (SELECT S.isbn FROM Sales S WHERE S.year = 2003)`)
	if len(q.Leaves) != 2 || q.Leaves[1].Join != exec.JoinSemi {
		t.Fatalf("leaves = %+v", q.Leaves)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("IN should add a join edge: %+v", q.Joins)
	}
	// NOT IN -> anti join.
	q = algebrize(t, cat, `SELECT B.title FROM Books B
		WHERE B.isbn NOT IN (SELECT S.isbn FROM Sales S)`)
	if q.Leaves[1].Join != exec.JoinAnti {
		t.Fatal("NOT IN should be an anti join")
	}
}

func TestAlgebrizeUnmentionedInstanceGetsTightDefault(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		CURRENCY 10 MIN ON (B)`)
	// R is unmentioned: it gets its own bound-0 class.
	if len(q.Constraint.Classes) != 2 {
		t.Fatalf("constraint = %v", q.Constraint)
	}
	var rBound time.Duration = -1
	for _, l := range q.Leaves {
		if l.Binding == "R" {
			rBound, _ = q.Constraint.BoundFor(l.ID)
		}
	}
	if rBound != 0 {
		t.Fatalf("R bound = %v, want 0", rBound)
	}
}

func TestAlgebrizeByColumns(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		CURRENCY 10 MIN ON (B), 30 MIN ON (R) BY R.isbn`)
	found := false
	for _, cl := range q.Constraint.Classes {
		if len(cl.By) == 1 && cl.By[0] == "R.isbn" {
			found = true
		}
	}
	if !found {
		t.Fatalf("BY column lost: %v", q.Constraint)
	}
}

func TestAlgebrizeAggregates(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT R.isbn, COUNT(*) AS n, AVG(R.rating) AS avg_r
		FROM Reviews R GROUP BY R.isbn HAVING COUNT(*) > 2 ORDER BY n DESC`)
	if len(q.Aggs) != 2 {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	// HAVING's COUNT(*) must reuse the projection's aggregate.
	havingRef, ok := q.Having.(*sqlparser.BinaryExpr)
	if !ok {
		t.Fatal("having")
	}
	if ref, ok := havingRef.Left.(*sqlparser.ColumnRef); !ok || ref.Table != aggBinding {
		t.Fatalf("having not rewritten: %s", q.Having.SQL())
	}
	// ORDER BY alias resolves to the aggregate reference.
	if ref, ok := q.OrderBy[0].Expr.(*sqlparser.ColumnRef); !ok || ref.Table != aggBinding {
		t.Fatalf("order by = %s", q.OrderBy[0].Expr.SQL())
	}
}

func TestAlgebrizeErrors(t *testing.T) {
	cat := bookstoreCatalog(t)
	bad := []string{
		"SELECT * FROM Nope",
		"SELECT nope FROM Books",
		"SELECT isbn FROM Books B, Reviews R",            // ambiguous
		"SELECT B.title FROM Books B CURRENCY 10 ON (Z)", // unknown table in clause
		"SELECT B.title FROM Books B WHERE EXISTS (SELECT 1 FROM Sales S, Books B2)",                               // multi-table EXISTS
		"SELECT B.title FROM Books B GROUP BY B.isbn",                                                              // title not grouped
		"SELECT B.title, B.isbn FROM Books B, Books B2 WHERE B.isbn = B2.isbn AND B.isbn = B.isbn GROUP BY B.isbn", // dup binding? no...
	}
	// The last case actually exercises duplicate bindings differently:
	bad[6] = "SELECT B.title FROM Books B, Reviews B WHERE B.isbn = 1"
	for _, sql := range bad {
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := Algebrize(sel, cat); err == nil {
			t.Errorf("algebrize %q: expected error", sql)
		}
	}
}

func TestTransitivePredInference(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE B.isbn = 42`)
	inferTransitivePreds(q)
	var r *Leaf
	for _, l := range q.Leaves {
		if l.Binding == "R" {
			r = l
		}
	}
	found := false
	for _, p := range r.Preds {
		if p.SQL() == "(R.isbn = 42)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("transitive pred missing: %v", exprSQLs(r.Preds))
	}
	// Idempotent: re-running must not duplicate.
	n := len(r.Preds)
	inferTransitivePreds(q)
	if len(r.Preds) != n {
		t.Fatal("transitive inference not idempotent")
	}
}

func exprSQLs(es []sqlparser.Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.SQL()
	}
	return out
}

func TestConstraintInstancesHelper(t *testing.T) {
	cat := bookstoreCatalog(t)
	q := algebrize(t, cat, `SELECT B.title FROM Books B CURRENCY 10 ON (B)`)
	ids := q.Constraint.Instances()
	if len(ids) != 1 || q.Leaf(ids[0]) == nil {
		t.Fatalf("instances = %v", ids)
	}
	if q.Leaf(cc.InstanceID(99)) != nil {
		t.Fatal("Leaf(99)")
	}
}
