package opt

import (
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
)

// Cost-model constants, in abstract milliseconds. Absolute values are
// calibrated loosely to a 2004-era server (the paper's testbed); what the
// experiments depend on is their relative order: per-byte shipping cost
// dominates large transfers, per-query latency dominates small ones, index
// seeks beat scans for selective predicates.
const (
	// costRow is the CPU cost of moving one row through an operator.
	costRow = 0.0001
	// costScanRow is the cost of reading one stored row during a scan.
	costScanRow = 0.00005
	// costSeek is the cost of one index seek.
	costSeek = 0.002
	// costHashBuild and costHashProbe are per-row hash-join costs.
	costHashBuild = 0.0002
	costHashProbe = 0.00015
	// costSort is the per-row per-comparison sort coefficient.
	costSort = 0.0003
	// costRemoteQuery is the fixed per-remote-query overhead (round trip,
	// connection handling).
	costRemoteQuery = 1.0
	// costByte is the cost of shipping one byte from the back end.
	costByte = 0.00002
	// costGuard is the cost of evaluating one currency guard (a local
	// heartbeat-table lookup plus a comparison).
	costGuard = 0.05
	// costParallelStartup is the fixed overhead of a morsel-driven parallel
	// scan: partitioning the key range, spawning workers and tearing down
	// the exchange. It keeps point and small range queries (the paper's
	// Table 4.2 lookups) on serial plans — parallelism only pays when the
	// scan itself dwarfs the startup.
	costParallelStartup = 0.15
	// maxCostDOP caps the degree of parallelism the cost model assumes.
	// Scan throughput stops scaling well past a few workers on this
	// workload (latch + exchange contention), and a conservative cap keeps
	// remote-vs-local plan choices stable across machines with different
	// core counts.
	maxCostDOP = 4
)

// parallelScanCost estimates a morsel-parallel scan given the serial access
// cost: the per-row scan work divides across workers, the per-output-row CPU
// (which the single consumer pays) does not, and the startup term is fixed.
func parallelScanCost(serialCost, outRows float64, dop int) float64 {
	perOut := outRows * costRow
	scanWork := serialCost - perOut
	if scanWork < 0 {
		scanWork = 0
	}
	return costParallelStartup + scanWork/float64(dop) + perOut
}

// selectivity estimates the fraction of a leaf's rows satisfying one
// conjunct.
func selectivity(stats *catalog.TableStats, e sqlparser.Expr) float64 {
	switch e := e.(type) {
	case *sqlparser.BinaryExpr:
		col, lit, op := normalizeCompare(e)
		if col == "" {
			return 0.5
		}
		switch op {
		case sqlparser.OpEQ:
			return stats.SelectivityEq(col)
		case sqlparser.OpNE:
			return 1 - stats.SelectivityEq(col)
		case sqlparser.OpLT, sqlparser.OpLE:
			return stats.SelectivityRange(col, sqltypes.Null, lit)
		case sqlparser.OpGT, sqlparser.OpGE:
			return stats.SelectivityRange(col, lit, sqltypes.Null)
		}
		return 0.5
	case *sqlparser.BetweenExpr:
		col := columnOf(e.Expr)
		lo, okLo := literalOf(e.Lo)
		hi, okHi := literalOf(e.Hi)
		if col == "" || !okLo || !okHi {
			return 0.3
		}
		s := stats.SelectivityRange(col, lo, hi)
		if e.Not {
			return 1 - s
		}
		return s
	case *sqlparser.InExpr:
		col := columnOf(e.Expr)
		if col == "" || len(e.List) == 0 {
			return 0.3
		}
		s := float64(len(e.List)) * stats.SelectivityEq(col)
		if s > 1 {
			s = 1
		}
		if e.Not {
			return 1 - s
		}
		return s
	case *sqlparser.IsNullExpr:
		return 0.05
	case *sqlparser.NotExpr:
		return 1 - selectivity(stats, e.Inner)
	default:
		return 0.5
	}
}

// normalizeCompare extracts (column, literal, op) from col-op-literal or
// literal-op-col comparisons.
func normalizeCompare(e *sqlparser.BinaryExpr) (string, sqltypes.Value, sqlparser.BinOp) {
	if col := columnOf(e.Left); col != "" {
		if lit, ok := literalOf(e.Right); ok {
			return col, lit, e.Op
		}
	}
	if col := columnOf(e.Right); col != "" {
		if lit, ok := literalOf(e.Left); ok {
			return col, lit, flipOp(e.Op)
		}
	}
	return "", sqltypes.Null, e.Op
}

func flipOp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLT:
		return sqlparser.OpGT
	case sqlparser.OpLE:
		return sqlparser.OpGE
	case sqlparser.OpGT:
		return sqlparser.OpLT
	case sqlparser.OpGE:
		return sqlparser.OpLE
	default:
		return op
	}
}

func columnOf(e sqlparser.Expr) string {
	if ref, ok := e.(*sqlparser.ColumnRef); ok {
		return ref.Column
	}
	return ""
}

func literalOf(e sqlparser.Expr) (sqltypes.Value, bool) {
	if lit, ok := e.(*sqlparser.Literal); ok {
		return lit.Val, true
	}
	return sqltypes.Null, false
}

// leafSelectivity multiplies conjunct selectivities.
func leafSelectivity(leaf *Leaf) float64 {
	s := 1.0
	for _, p := range leaf.Preds {
		s *= selectivity(leaf.Table.Stats, p)
	}
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// leafRows estimates how many rows the leaf access returns.
func leafRows(leaf *Leaf) float64 {
	return float64(leaf.Table.Stats.Rows()) * leafSelectivity(leaf)
}

// leafRowBytes estimates the shipped width of one leaf row: the table's
// average row width scaled by the fraction of columns fetched.
func leafRowBytes(leaf *Leaf) float64 {
	frac := float64(len(leaf.Cols)) / float64(len(leaf.Table.Columns))
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	return float64(leaf.Table.Stats.RowBytes()) * frac
}

// joinRows estimates the output cardinality of joining a prefix of
// leftRows with a leaf of rightRows over the given join columns, using the
// standard 1/max(NDV) formula.
func joinRows(leftRows, rightRows float64, leaf *Leaf, rightCol string) float64 {
	ndv := float64(1)
	if cs := leaf.Table.Stats.Column(rightCol); cs != nil && cs.NDV > 0 {
		ndv = float64(cs.NDV)
	}
	out := leftRows * rightRows / ndv
	if out < 0 {
		out = 0
	}
	return out
}

// bestAccessCost estimates the cheapest access path for a leaf against its
// base table's indexes (used both for local planning at the back end and for
// estimating what the back end will pay to answer a remote fetch). It
// returns the cost and whether an index seek (vs a full scan) was chosen.
func bestAccessCost(leaf *Leaf) (float64, bool) {
	total := float64(leaf.Table.Stats.Rows())
	out := leafRows(leaf)
	scanCost := total*costScanRow + out*costRow
	best := scanCost
	usedIndex := false
	for _, idx := range leaf.Table.Indexes {
		sel, ok := indexPrefixSelectivity(leaf, idx)
		if !ok {
			continue
		}
		rowsTouched := total * sel
		c := costSeek + rowsTouched*costScanRow + out*costRow
		if !idx.Clustered {
			// Secondary index lookups pay an extra heap fetch per row.
			c += rowsTouched * costSeek * 0.1
		}
		if c < best {
			best = c
			usedIndex = true
		}
	}
	return best, usedIndex
}

// indexPrefixSelectivity estimates the selectivity achieved by driving the
// given index with the leaf's predicates; ok=false if no predicate
// constrains the index's leading column.
func indexPrefixSelectivity(leaf *Leaf, idx *catalog.Index) (float64, bool) {
	if len(idx.Columns) == 0 {
		return 1, false
	}
	lead := idx.Columns[0]
	sel := 1.0
	found := false
	for _, p := range leaf.Preds {
		if predColumn(p) == lead {
			sel *= selectivity(leaf.Table.Stats, p)
			found = true
		}
	}
	return sel, found
}

// predColumn returns the single column a simple predicate constrains.
func predColumn(e sqlparser.Expr) string {
	switch e := e.(type) {
	case *sqlparser.BinaryExpr:
		col, _, _ := normalizeCompare(e)
		return col
	case *sqlparser.BetweenExpr:
		return columnOf(e.Expr)
	case *sqlparser.InExpr:
		return columnOf(e.Expr)
	case *sqlparser.IsNullExpr:
		return columnOf(e.Expr)
	default:
		return ""
	}
}

// remoteFetchCost estimates a remote leaf fetch: fixed round trip + the back
// end's execution cost + shipping the rows.
func remoteFetchCost(leaf *Leaf) float64 {
	backend, _ := bestAccessCost(leaf)
	rows := leafRows(leaf)
	return costRemoteQuery + backend + rows*leafRowBytes(leaf)*costByte
}

// estimateQueryOutput estimates (rows, bytesPerRow) of the whole query's
// result, for costing the ship-everything remote plan.
func estimateQueryOutput(q *Query) (rows, rowBytes float64) {
	rows = 0
	first := true
	var width float64
	for _, l := range q.Leaves {
		if l.Join != exec.JoinInner {
			continue
		}
		width += leafRowBytes(l)
		r := leafRows(l)
		if first {
			rows = r
			first = false
			continue
		}
		// Find a join pred connecting l to anything; use NDV formula.
		col := ""
		for _, j := range q.Joins {
			if j.RightLeaf == l.ID {
				col = j.RightCol
			}
			if j.LeftLeaf == l.ID {
				col = j.LeftCol
			}
		}
		if col == "" {
			rows *= r // cartesian
			continue
		}
		rows = joinRows(rows, r, l, col)
	}
	// Semi/anti leaves only filter.
	for _, l := range q.Leaves {
		if l.Join != exec.JoinInner {
			rows *= 0.7
		}
	}
	if len(q.GroupBy) > 0 {
		rows = rows * 0.1 // grouped output is much smaller
	} else if len(q.Aggs) > 0 {
		rows = 1
	}
	if q.Top > 0 && rows > float64(q.Top) {
		rows = float64(q.Top)
	}
	if width < 8 {
		width = 8
	}
	return rows, width
}

// wholeRemoteCost estimates the plan that ships the entire query to the back
// end: round trip + back-end execution + shipping the final result.
func wholeRemoteCost(q *Query) float64 {
	var backendCost float64
	prefixRows := 0.0
	first := true
	for _, l := range q.Leaves {
		access, _ := bestAccessCost(l)
		backendCost += access
		r := leafRows(l)
		if first {
			prefixRows = r
			first = false
		} else {
			col := ""
			for _, j := range q.Joins {
				if j.RightLeaf == l.ID {
					col = j.RightCol
				} else if j.LeftLeaf == l.ID {
					col = j.LeftCol
				}
			}
			if col == "" {
				prefixRows *= r
			} else {
				prefixRows = joinRows(prefixRows, r, l, col)
			}
			backendCost += r*costHashBuild + prefixRows*costHashProbe
		}
	}
	rows, width := estimateQueryOutput(q)
	return costRemoteQuery + backendCost + rows*width*costByte
}
