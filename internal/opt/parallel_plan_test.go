package opt

import (
	"strings"
	"testing"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// parallelFixture: a back-end site with one wide clustered table, large
// enough that a full scan's work dwarfs the parallel startup cost.
func parallelFixture(t *testing.T) *Planner {
	t.Helper()
	cat := catalog.New()
	cust := &catalog.Table{
		Name: "Customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: sqltypes.KindInt, NotNull: true},
			{Name: "c_name", Type: sqltypes.KindString},
			{Name: "c_acctbal", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"c_custkey"},
	}
	if err := cat.AddTable(cust); err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(cat.Table("Customer"))
	for i := int64(1); i <= 12000; i++ {
		tbl.Insert(sqltypes.Row{
			sqltypes.NewInt(i),
			sqltypes.NewString("c"),
			sqltypes.NewFloat(float64(i % 100)),
		})
	}
	def := cat.Table("Customer")
	stats := catalog.BuildStats(def, func(yield func(sqltypes.Row)) {
		tbl.Scan(func(r sqltypes.Row) bool { yield(r); return true })
	})
	def.Stats.Set(stats.RowCount, stats.AvgRowBytes, stats.Columns)
	return NewPlanner(&Site{
		Cat:        cat,
		LocalTable: func(n string) *storage.Table { return tbl },
		LocalView:  func(string) *storage.Table { return nil },
		Clock:      vclock.NewVirtual(),
	})
}

// TestWideScanGoesParallel: with DOP available, an analytic full scan picks
// the morsel-parallel access path and the plan reports its DOP.
func TestWideScanGoesParallel(t *testing.T) {
	p := parallelFixture(t)
	p.Opts.MaxDOP = 4
	plan, rows := planAndRun(t, p, "SELECT c_custkey, c_name FROM Customer")
	if !strings.Contains(plan.Shape, "ParScan(Customer)") {
		t.Fatalf("expected parallel scan, got %s", plan.Shape)
	}
	if plan.DOP != 4 {
		t.Fatalf("plan DOP = %d, want 4", plan.DOP)
	}
	if rows != 12000 {
		t.Fatalf("rows = %d", rows)
	}
}

// TestPointQueryStaysSerial: the startup cost keeps point lookups on the
// serial seek plan even when parallelism is available.
func TestPointQueryStaysSerial(t *testing.T) {
	p := parallelFixture(t)
	p.Opts.MaxDOP = 4
	plan, rows := planAndRun(t, p, "SELECT c_name FROM Customer WHERE c_custkey = 7")
	if strings.Contains(plan.Shape, "ParScan") {
		t.Fatalf("point query went parallel: %s", plan.Shape)
	}
	if plan.DOP != 1 {
		t.Fatalf("plan DOP = %d, want 1", plan.DOP)
	}
	if rows != 1 {
		t.Fatalf("rows = %d", rows)
	}
}

// TestNoParallelOption: the ablation switch removes parallel candidates.
func TestNoParallelOption(t *testing.T) {
	p := parallelFixture(t)
	p.Opts.MaxDOP = 4
	p.Opts.NoParallel = true
	plan, rows := planAndRun(t, p, "SELECT c_custkey, c_name FROM Customer")
	if strings.Contains(plan.Shape, "ParScan") || plan.DOP != 1 {
		t.Fatalf("NoParallel ignored: %s (DOP %d)", plan.Shape, plan.DOP)
	}
	if rows != 12000 {
		t.Fatalf("rows = %d", rows)
	}
}

// TestMaxDOPOneDisablesParallel: a single worker can never beat the serial
// scan, so MaxDOP=1 is an effective off switch.
func TestMaxDOPOneDisablesParallel(t *testing.T) {
	p := parallelFixture(t)
	p.Opts.MaxDOP = 1
	plan, _ := planAndRun(t, p, "SELECT c_custkey, c_name FROM Customer")
	if strings.Contains(plan.Shape, "ParScan") || plan.DOP != 1 {
		t.Fatalf("MaxDOP=1 produced a parallel plan: %s (DOP %d)", plan.Shape, plan.DOP)
	}
}

// TestOrderedPlanFallsBackToSerialScans: merge joins need their inputs in
// clustered order, which a morsel-parallel scan cannot deliver. With
// parallelism available the co-clustered join must still choose the merge
// join over a hash join fed by parallel scans — the interesting-orders case.
func TestOrderedPlanFallsBackToSerialScans(t *testing.T) {
	p := mergeFixture(t)
	p.Opts.MaxDOP = 4
	plan, rows := planAndRun(t, p,
		"SELECT C.c_custkey, O.o_totalprice FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey")
	if !strings.Contains(plan.Shape, "MergeJoin") {
		t.Fatalf("expected merge join, got %s", plan.Shape)
	}
	if strings.Contains(plan.Shape, "ParScan") {
		t.Fatalf("merge join fed by an unordered parallel scan: %s", plan.Shape)
	}
	if plan.DOP != 1 {
		t.Fatalf("plan DOP = %d, want 1", plan.DOP)
	}
	if rows != 5000 {
		t.Fatalf("rows = %d", rows)
	}
}
