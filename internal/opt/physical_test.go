package opt

import (
	"math"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// backendFixture is a self-contained single-site planner setup with data.
type backendFixture struct {
	cat    *catalog.Catalog
	tables map[string]*storage.Table
	plan   *Planner
}

func newBackendFixture(t *testing.T) *backendFixture {
	t.Helper()
	f := &backendFixture{cat: catalog.New(), tables: map[string]*storage.Table{}}
	books := &catalog.Table{
		Name: "Books",
		Columns: []catalog.Column{
			{Name: "isbn", Type: sqltypes.KindInt, NotNull: true},
			{Name: "title", Type: sqltypes.KindString},
			{Name: "price", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"isbn"},
	}
	reviews := &catalog.Table{
		Name: "Reviews",
		Columns: []catalog.Column{
			{Name: "review_id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "isbn", Type: sqltypes.KindInt, NotNull: true},
			{Name: "rating", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"review_id"},
	}
	for _, def := range []*catalog.Table{books, reviews} {
		if err := f.cat.AddTable(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.cat.AddIndex(&catalog.Index{Name: "ix_price", Table: "Books", Columns: []string{"price"}}); err != nil {
		t.Fatal(err)
	}
	if err := f.cat.AddIndex(&catalog.Index{Name: "ix_rev_isbn", Table: "Reviews", Columns: []string{"isbn"}}); err != nil {
		t.Fatal(err)
	}
	for _, def := range []*catalog.Table{books, reviews} {
		f.tables[def.Name] = storage.NewTable(def)
	}
	for i := int64(1); i <= 200; i++ {
		if err := f.tables["Books"].Insert(sqltypes.Row{
			sqltypes.NewInt(i),
			sqltypes.NewString("title"),
			sqltypes.NewFloat(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
		for r := int64(0); r < 3; r++ {
			if err := f.tables["Reviews"].Insert(sqltypes.Row{
				sqltypes.NewInt(i*10 + r),
				sqltypes.NewInt(i),
				sqltypes.NewInt(r + 1),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, tbl := range f.tables {
		def := f.cat.Table(name)
		stats := catalog.BuildStats(def, func(yield func(sqltypes.Row)) {
			tbl.Scan(func(r sqltypes.Row) bool { yield(r); return true })
		})
		def.Stats.Set(stats.RowCount, stats.AvgRowBytes, stats.Columns)
	}
	f.plan = NewPlanner(&Site{
		Cat:        f.cat,
		LocalTable: func(n string) *storage.Table { return f.tables[n] },
		LocalView:  func(string) *storage.Table { return nil },
		Clock:      vclock.NewVirtual(),
	})
	return f
}

func (f *backendFixture) run(t *testing.T, sql string) (*Plan, []sqltypes.Row) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := f.plan.PlanSelect(sel)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := exec.Run(plan.Root, &exec.EvalContext{Now: vclock.Epoch}, 0)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return plan, res.Rows
}

func TestBackendPointLookup(t *testing.T) {
	f := newBackendFixture(t)
	plan, rows := f.run(t, "SELECT title FROM Books WHERE isbn = 42")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(plan.Shape, "Scan(Books)") {
		t.Fatalf("shape = %s", plan.Shape)
	}
}

func TestBackendRangeUsesSecondaryIndex(t *testing.T) {
	f := newBackendFixture(t)
	// Verify the access path decision directly.
	sel, _ := sqlparser.ParseSelect("SELECT isbn FROM Books WHERE price BETWEEN 10 AND 20")
	q, err := Algebrize(sel, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	leaf := q.Leaves[0]
	path := chooseAccessPath(f.cat.Table("Books"), leaf.Table.Stats, leaf.Preds, leafRows(leaf))
	if path.index != "ix_price" {
		t.Fatalf("access path index = %q", path.index)
	}
	if len(path.residual) != 0 {
		t.Fatalf("range should be fully absorbed, residual = %v", path.residual)
	}
	_, rows := f.run(t, "SELECT isbn FROM Books WHERE price BETWEEN 10 AND 20")
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestBackendJoinCorrectAndCountsMatch(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, `SELECT B.isbn, R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE B.isbn <= 10`)
	if len(rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(rows))
	}
}

func TestBackendSemiJoin(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, `SELECT B.isbn FROM Books B
		WHERE EXISTS (SELECT 1 FROM Reviews R WHERE R.isbn = B.isbn AND R.rating = 3)`)
	if len(rows) != 200 {
		t.Fatalf("semi rows = %d", len(rows))
	}
	_, rows = f.run(t, `SELECT B.isbn FROM Books B
		WHERE NOT EXISTS (SELECT 1 FROM Reviews R WHERE R.isbn = B.isbn AND R.rating = 7)`)
	if len(rows) != 200 {
		t.Fatalf("anti rows = %d", len(rows))
	}
}

func TestBackendDistinctTopOrder(t *testing.T) {
	f := newBackendFixture(t)
	_, rows := f.run(t, "SELECT DISTINCT rating FROM Reviews")
	if len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
	_, rows = f.run(t, "SELECT TOP 5 isbn FROM Books ORDER BY price DESC")
	if len(rows) != 5 || rows[0][0].Int() != 200 {
		t.Fatalf("top = %v", rows)
	}
}

func TestBoundsForIndex(t *testing.T) {
	idx := &catalog.Index{Name: "ix", Columns: []string{"price"}}
	parse := func(where string) []sqlparser.Expr {
		sel, err := sqlparser.ParseSelect("SELECT 1 FROM t WHERE " + where)
		if err != nil {
			t.Fatal(err)
		}
		return conjuncts(sel.Where)
	}
	lo, hi, used, res := boundsForIndex(idx, parse("price >= 5 AND price < 9"))
	if !used || len(res) != 0 {
		t.Fatalf("used=%v res=%v", used, res)
	}
	if !lo.Inclusive || lo.Vals[0].Int() != 5 || hi.Inclusive || hi.Vals[0].Int() != 9 {
		t.Fatalf("bounds = %+v %+v", lo, hi)
	}
	// Equality pins both ends.
	lo, hi, used, _ = boundsForIndex(idx, parse("price = 7"))
	if !used || lo.Vals[0].Int() != 7 || hi.Vals[0].Int() != 7 || !lo.Inclusive || !hi.Inclusive {
		t.Fatalf("eq bounds = %+v %+v", lo, hi)
	}
	// Unrelated predicate stays residual; no leading-column constraint.
	_, _, used, res = boundsForIndex(idx, parse("other = 1"))
	if used || len(res) != 1 {
		t.Fatal("unconstrained index should not be used")
	}
	// Flipped literal comparison (5 < price).
	lo, _, used, _ = boundsForIndex(idx, parse("5 < price"))
	if !used || lo.Inclusive || lo.Vals[0].Int() != 5 {
		t.Fatalf("flipped bounds = %+v", lo)
	}
	// Tighter of two lower bounds wins.
	lo, _, _, _ = boundsForIndex(idx, parse("price > 3 AND price > 8"))
	if lo.Vals[0].Int() != 8 {
		t.Fatalf("tighter bound = %+v", lo)
	}
}

func TestViewMatching(t *testing.T) {
	leafTable := &catalog.Table{
		Name: "T",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"id"},
	}
	parsePreds := func(where string) []sqlparser.Expr {
		sel, _ := sqlparser.ParseSelect("SELECT 1 FROM T WHERE " + where)
		return conjuncts(sel.Where)
	}
	leaf := &Leaf{Table: leafTable, Binding: "T", Cols: []string{"id", "a"}}

	full := &catalog.View{Name: "v", BaseTable: "T", Columns: []string{"id", "a", "b"}}
	if !viewMatches(full, leaf) {
		t.Fatal("full projection should match")
	}
	missing := &catalog.View{Name: "v", BaseTable: "T", Columns: []string{"id", "b"}}
	if viewMatches(missing, leaf) {
		t.Fatal("view missing column a must not match")
	}
	otherTable := &catalog.View{Name: "v", BaseTable: "U", Columns: []string{"id", "a"}}
	if viewMatches(otherTable, leaf) {
		t.Fatal("different base table must not match")
	}
	// Selection views: query pred must imply view pred.
	selView := &catalog.View{
		Name: "v", BaseTable: "T", Columns: []string{"id", "a"},
		Preds: []catalog.SimplePred{{Column: "a", Op: catalog.OpGE, Value: sqltypes.NewInt(10)}},
	}
	leaf.Preds = parsePreds("a >= 20")
	if !viewMatches(selView, leaf) {
		t.Fatal("a>=20 implies a>=10")
	}
	leaf.Preds = parsePreds("a >= 5")
	if viewMatches(selView, leaf) {
		t.Fatal("a>=5 does not imply a>=10")
	}
	leaf.Preds = parsePreds("a = 15")
	if !viewMatches(selView, leaf) {
		t.Fatal("a=15 implies a>=10")
	}
	leaf.Preds = parsePreds("a BETWEEN 12 AND 30")
	if !viewMatches(selView, leaf) {
		t.Fatal("BETWEEN 12 AND 30 implies a>=10")
	}
	leaf.Preds = parsePreds("a BETWEEN 2 AND 30")
	if viewMatches(selView, leaf) {
		t.Fatal("BETWEEN 2 AND 30 does not imply a>=10")
	}
	// Equality view pred.
	eqView := &catalog.View{
		Name: "v", BaseTable: "T", Columns: []string{"id", "a"},
		Preds: []catalog.SimplePred{{Column: "a", Op: catalog.OpEQ, Value: sqltypes.NewInt(7)}},
	}
	leaf.Preds = parsePreds("a = 7")
	if !viewMatches(eqView, leaf) {
		t.Fatal("a=7 implies a=7")
	}
	leaf.Preds = parsePreds("a = 8")
	if viewMatches(eqView, leaf) {
		t.Fatal("a=8 does not imply a=7")
	}
	// Upper-bound view pred.
	ltView := &catalog.View{
		Name: "v", BaseTable: "T", Columns: []string{"id", "a"},
		Preds: []catalog.SimplePred{{Column: "a", Op: catalog.OpLT, Value: sqltypes.NewInt(100)}},
	}
	leaf.Preds = parsePreds("a < 50")
	if !viewMatches(ltView, leaf) {
		t.Fatal("a<50 implies a<100")
	}
	leaf.Preds = parsePreds("a < 200")
	if viewMatches(ltView, leaf) {
		t.Fatal("a<200 does not imply a<100")
	}
}

func TestHeartbeatGuard(t *testing.T) {
	hbDef := &catalog.Table{
		Name: "Heartbeat_local",
		Columns: []catalog.Column{
			{Name: "cid", Type: sqltypes.KindInt, NotNull: true},
			{Name: "ts", Type: sqltypes.KindTime, NotNull: true},
		},
		PrimaryKey: []string{"cid"},
	}
	if err := catalog.New().AddTable(hbDef); err != nil {
		t.Fatal(err)
	}
	hb := storage.NewTable(hbDef)
	now := vclock.Epoch.Add(100 * time.Second)
	// Region 1 synced 8s ago; region 2 never synced.
	if err := hb.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewTime(now.Add(-8 * time.Second))}); err != nil {
		t.Fatal(err)
	}
	ctx := &exec.EvalContext{Now: now}

	sel := heartbeatGuard(hb, 1, 10*time.Second, time.Time{})
	if got, _ := sel(ctx); got != 0 {
		t.Fatal("8s stale within 10s bound should choose local")
	}
	sel = heartbeatGuard(hb, 1, 5*time.Second, time.Time{})
	if got, _ := sel(ctx); got != 1 {
		t.Fatal("8s stale beyond 5s bound should choose remote")
	}
	sel = heartbeatGuard(hb, 2, time.Hour, time.Time{})
	if got, _ := sel(ctx); got != 1 {
		t.Fatal("unsynced region should choose remote")
	}
	// Unbounded (unconstrained leaf) with synced region: local.
	sel = heartbeatGuard(hb, 1, time.Duration(math.MaxInt64), time.Time{})
	if got, _ := sel(ctx); got != 0 {
		t.Fatal("unbounded guard should choose local")
	}
	// Timeline floor above the sync point forces remote.
	sel = heartbeatGuard(hb, 1, time.Hour, now.Add(-time.Second))
	if got, _ := sel(ctx); got != 1 {
		t.Fatal("timeline floor should force remote")
	}
	sel = heartbeatGuard(hb, 1, time.Hour, now.Add(-time.Minute))
	if got, _ := sel(ctx); got != 0 {
		t.Fatal("floor below sync point should allow local")
	}
}

func TestSelectivityHelpers(t *testing.T) {
	stats := catalog.NewTableStats()
	stats.Set(1000, 50, map[string]*catalog.ColumnStats{
		"a": {NDV: 100, Min: sqltypes.NewFloat(0), Max: sqltypes.NewFloat(100)},
	})
	parse := func(where string) sqlparser.Expr {
		sel, _ := sqlparser.ParseSelect("SELECT 1 FROM t WHERE " + where)
		return sel.Where
	}
	if got := selectivity(stats, parse("a = 5")); got != 0.01 {
		t.Fatalf("eq = %v", got)
	}
	if got := selectivity(stats, parse("a <> 5")); got != 0.99 {
		t.Fatalf("ne = %v", got)
	}
	lt := selectivity(stats, parse("a < 50"))
	if lt < 0.4 || lt > 0.6 {
		t.Fatalf("lt = %v", lt)
	}
	in := selectivity(stats, parse("a IN (1, 2, 3)"))
	if in < 0.029 || in > 0.031 {
		t.Fatalf("in = %v", in)
	}
	if got := selectivity(stats, parse("a IS NULL")); got != 0.05 {
		t.Fatalf("isnull = %v", got)
	}
	nb := selectivity(stats, parse("NOT (a = 5)"))
	if nb != 0.99 {
		t.Fatalf("not = %v", nb)
	}
	btw := selectivity(stats, parse("a BETWEEN 25 AND 75"))
	if btw < 0.4 || btw > 0.6 {
		t.Fatalf("between = %v", btw)
	}
}

func TestFlipOp(t *testing.T) {
	cases := map[sqlparser.BinOp]sqlparser.BinOp{
		sqlparser.OpLT: sqlparser.OpGT,
		sqlparser.OpLE: sqlparser.OpGE,
		sqlparser.OpGT: sqlparser.OpLT,
		sqlparser.OpGE: sqlparser.OpLE,
		sqlparser.OpEQ: sqlparser.OpEQ,
	}
	for in, want := range cases {
		if flipOp(in) != want {
			t.Errorf("flip %v", in)
		}
	}
}

func TestTrivialSelectRejectedWithoutFrom(t *testing.T) {
	f := newBackendFixture(t)
	sel, _ := sqlparser.ParseSelect("SELECT 1")
	if _, _, err := f.plan.PlanSelect(sel); err == nil {
		t.Fatal("planner should defer FROM-less selects to the trivial path")
	}
}

func TestLeafFetchSQL(t *testing.T) {
	f := newBackendFixture(t)
	sel, _ := sqlparser.ParseSelect("SELECT B.title FROM Books B WHERE B.isbn = 3 AND B.price > 1")
	q, err := Algebrize(sel, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	sql := leafFetchSQL(q.Leaves[0])
	if !strings.HasPrefix(sql, "SELECT B.isbn, B.title, B.price FROM Books B WHERE") {
		t.Fatalf("leaf SQL = %s", sql)
	}
	// It must re-parse.
	if _, err := sqlparser.ParseSelect(sql); err != nil {
		t.Fatalf("leaf SQL does not re-parse: %v", err)
	}
}
