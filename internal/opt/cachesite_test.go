package opt_test

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

// cacheFixture wires a real back end + cache and returns the cache plus its
// clock. Exercising the planner through mtcache.Plan covers opt's
// cache-site code paths (view matching, guards, remote candidates).
func cacheFixture(t *testing.T) (*mtcache.Cache, *vclock.Virtual) {
	t.Helper()
	clock := vclock.NewVirtual()
	b := backend.New(clock)
	mustExec := func(sql string) {
		t.Helper()
		if _, err := b.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE Item (i_id BIGINT NOT NULL PRIMARY KEY, i_cat BIGINT NOT NULL, i_price DOUBLE NOT NULL)`)
	mustExec(`CREATE TABLE Stock (s_item BIGINT NOT NULL, s_loc BIGINT NOT NULL, s_qty BIGINT NOT NULL, PRIMARY KEY (s_item, s_loc))`)
	var items, stock []sqltypes.Row
	for i := int64(1); i <= 400; i++ {
		items = append(items, sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i % 10), sqltypes.NewFloat(float64(i))})
		for l := int64(0); l < 4; l++ {
			stock = append(stock, sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(l), sqltypes.NewInt(i + l)})
		}
	}
	if err := b.LoadRows("Item", items); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadRows("Stock", stock); err != nil {
		t.Fatal(err)
	}
	b.AnalyzeAll()
	c := mtcache.New(clock, b)
	if _, err := c.AddRegion(&catalog.Region{
		ID: 1, Name: "R1", UpdateInterval: 10 * time.Second, UpdateDelay: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddRegion(&catalog.Region{
		ID: 2, Name: "R2", UpdateInterval: 10 * time.Second, UpdateDelay: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&catalog.View{
		Name: "item_prj", BaseTable: "Item", Columns: []string{"i_id", "i_cat", "i_price"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A selection view in another region: only category 3 items.
	if err := c.CreateView(&catalog.View{
		Name: "item_cat3", BaseTable: "Item", Columns: []string{"i_id", "i_cat", "i_price"},
		Preds:    []catalog.SimplePred{{Column: "i_cat", Op: catalog.OpEQ, Value: sqltypes.NewInt(3)}},
		RegionID: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&catalog.View{
		Name: "stock_prj", BaseTable: "Stock", Columns: []string{"s_item", "s_loc", "s_qty"}, RegionID: 2,
	}); err != nil {
		t.Fatal(err)
	}
	c.RefreshShadowStats()
	// Mark both regions synchronized "now".
	c.SetLastSync(1, clock.Now())
	c.SetLastSync(2, clock.Now())
	return c, clock
}

func plan(t *testing.T, c *mtcache.Cache, sql string, opts opt.Options) *opt.Plan {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := c.Plan(sel, opts)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return p
}

func runPlan(t *testing.T, c *mtcache.Cache, p *opt.Plan) []sqltypes.Row {
	t.Helper()
	res, err := exec.Run(p.Root, &exec.EvalContext{Now: c.Clock().Now()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func TestCacheSelectionViewMatchesOnlyImpliedPredicates(t *testing.T) {
	c, _ := cacheFixture(t)
	// Query restricted to category 3: both item_prj and item_cat3 match;
	// ForceLocal + NoGuards shows a view was usable.
	p := plan(t, c, "SELECT i_price FROM Item WHERE i_cat = 3 CURRENCY 60 ON (Item)",
		opt.Options{NoGuards: true, ForceLocal: true, IgnoreConstraints: true})
	if !p.UsesLocal {
		t.Fatalf("plan = %s", p.Shape)
	}
	rows := runPlan(t, c, p)
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Query over a different category must not use item_cat3.
	p = plan(t, c, "SELECT i_price FROM Item WHERE i_cat = 4 CURRENCY 60 ON (Item)",
		opt.Options{NoGuards: true, ForceLocal: true, IgnoreConstraints: true})
	if strings.Contains(p.Shape, "item_cat3") {
		t.Fatalf("selection view misused: %s", p.Shape)
	}
}

func TestCacheGuardedPlanExecutesLocally(t *testing.T) {
	c, _ := cacheFixture(t)
	p := plan(t, c, "SELECT i_price FROM Item WHERE i_id = 7 CURRENCY 3600 ON (Item)", opt.Options{})
	if p.Guards != 1 || !p.UsesLocal {
		t.Fatalf("plan = %s", p.Shape)
	}
	rows := runPlan(t, c, p)
	if len(rows) != 1 || rows[0][0].Float() != 7 {
		t.Fatalf("rows = %v", rows)
	}
	sus := exec.CollectSwitchUnions(p.Root)
	if len(sus) != 1 || sus[0].ChosenIndex() != 0 {
		t.Fatalf("guard decision = %+v", sus)
	}
}

func TestCacheGuardFallsBackWhenStale(t *testing.T) {
	c, clock := cacheFixture(t)
	clock.Advance(30 * time.Second) // both regions now 30s stale
	p := plan(t, c, "SELECT i_price FROM Item WHERE i_id = 7 CURRENCY 10 ON (Item)", opt.Options{ForceLocal: true})
	rows := runPlan(t, c, p)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	sus := exec.CollectSwitchUnions(p.Root)
	if len(sus) != 1 || sus[0].ChosenIndex() != 1 {
		t.Fatal("guard should have fallen back to remote")
	}
}

func TestCacheGuardedNLJAcrossRegions(t *testing.T) {
	c, _ := cacheFixture(t)
	// Join over both views (different regions, separate classes) with a
	// predicate wide enough that local execution wins.
	p := plan(t, c, `SELECT I.i_id, S.s_qty FROM Item I JOIN Stock S ON I.i_id = S.s_item
		WHERE I.i_price >= 0 CURRENCY 60 ON (I), 60 ON (S)`, opt.Options{ForceLocal: true})
	if !p.UsesLocal || p.Guards == 0 {
		t.Fatalf("plan = %s", p.Shape)
	}
	rows := runPlan(t, c, p)
	if len(rows) != 1600 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestCacheConsistencyClassAcrossRegionsRejectsLocal(t *testing.T) {
	c, _ := cacheFixture(t)
	p := plan(t, c, `SELECT I.i_id FROM Item I JOIN Stock S ON I.i_id = S.s_item
		WHERE I.i_id = 5 CURRENCY 60 ON (I, S)`, opt.Options{})
	if p.UsesLocal {
		t.Fatalf("cross-region class must force remote: %s", p.Shape)
	}
}

func TestCacheBoundBelowDelayPrunes(t *testing.T) {
	c, _ := cacheFixture(t)
	p := plan(t, c, "SELECT i_price FROM Item WHERE i_id = 7 CURRENCY 1 ON (Item)", opt.Options{})
	if p.UsesLocal || p.Guards != 0 {
		t.Fatalf("plan = %s", p.Shape)
	}
}

func TestCacheNoViewsOption(t *testing.T) {
	c, _ := cacheFixture(t)
	p := plan(t, c, "SELECT i_price FROM Item WHERE i_id = 7 CURRENCY 3600 ON (Item)", opt.Options{NoViews: true})
	if p.UsesLocal {
		t.Fatalf("NoViews used a view: %s", p.Shape)
	}
	rows := runPlan(t, c, p)
	if len(rows) != 1 {
		t.Fatal("rows")
	}
}

func TestCacheAggregationOverGuardedView(t *testing.T) {
	c, _ := cacheFixture(t)
	p := plan(t, c, `SELECT I.i_cat, COUNT(*) AS n FROM Item I
		WHERE I.i_price >= 0 GROUP BY I.i_cat ORDER BY I.i_cat
		CURRENCY 3600 ON (I)`, opt.Options{ForceLocal: true})
	rows := runPlan(t, c, p)
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if r[1].Int() != 40 {
			t.Fatalf("group = %v", r)
		}
	}
}

func TestCacheUnconstrainedLeafWithClausePresent(t *testing.T) {
	c, _ := cacheFixture(t)
	// Clause names only Item; Stock gets the tight default (bound 0) and
	// must come from the master.
	p := plan(t, c, `SELECT I.i_id FROM Item I JOIN Stock S ON I.i_id = S.s_item
		WHERE I.i_price >= 0 CURRENCY 60 ON (I)`, opt.Options{ForceLocal: true})
	if !strings.Contains(p.Shape, "Remote(Stock)") && !strings.Contains(p.Shape, "Remote") {
		t.Fatalf("Stock must be remote: %s", p.Shape)
	}
	if !p.UsesLocal {
		t.Fatalf("Item should still be local: %s", p.Shape)
	}
}
