// Package tpcd generates the TPC-D-style workload of the paper's evaluation
// (Section 4): the Customer and Orders tables at a configurable scale
// factor, with the paper's key structure — Customer clustered on c_custkey
// with a secondary index on c_acctbal; Orders clustered on (o_custkey,
// o_orderkey); ten orders per customer — plus the standard cache
// configuration of Table 4.1 (cust_prj in region CR1, orders_prj in CR2)
// and the query schemas behind Tables 4.2/4.3 and Figure 4.1.
package tpcd

import (
	"fmt"
	"math/rand"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
)

// Scale-1.0 cardinalities from the paper; Load scales them down.
const (
	customersAtScale1 = 150000
	ordersPerCustomer = 10
)

// Config describes a generated database.
type Config struct {
	// ScaleFactor scales row counts: 1.0 gives the paper's 150,000
	// customers and 1,500,000 orders. Benchmarks use a smaller factor.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
}

// Customers returns the number of customers at the configured scale.
func (c Config) Customers() int {
	n := int(float64(customersAtScale1) * c.ScaleFactor)
	if n < 1 {
		n = 1
	}
	return n
}

// Orders returns the number of orders at the configured scale.
func (c Config) Orders() int { return c.Customers() * ordersPerCustomer }

// AcctBalMin and AcctBalMax bound the generated account balances.
const (
	AcctBalMin = -999.99
	AcctBalMax = 9999.99
)

// CreateSchema creates Customer and Orders on the back end with the paper's
// index structure.
func CreateSchema(sys *core.System) {
	sys.MustExec(`CREATE TABLE Customer (
		c_custkey BIGINT NOT NULL,
		c_name VARCHAR(25) NOT NULL,
		c_nationkey BIGINT NOT NULL,
		c_acctbal DOUBLE NOT NULL,
		PRIMARY KEY (c_custkey))`)
	sys.MustExec("CREATE INDEX ix_cust_acctbal ON Customer (c_acctbal)")
	sys.MustExec(`CREATE TABLE Orders (
		o_custkey BIGINT NOT NULL,
		o_orderkey BIGINT NOT NULL,
		o_totalprice DOUBLE NOT NULL,
		o_orderdate TIMESTAMP NOT NULL,
		PRIMARY KEY (o_custkey, o_orderkey))`)
}

// Load bulk-loads generated rows into the back end and refreshes statistics
// on both servers.
func Load(sys *core.System, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Customers()
	const batch = 4096
	var rows []sqltypes.Row
	flush := func(table string) error {
		if len(rows) == 0 {
			return nil
		}
		if err := sys.Backend.LoadRows(table, rows); err != nil {
			return err
		}
		rows = rows[:0]
		return nil
	}
	for k := 1; k <= n; k++ {
		rows = append(rows, CustomerRow(int64(k), rng))
		if len(rows) >= batch {
			if err := flush("Customer"); err != nil {
				return err
			}
		}
	}
	if err := flush("Customer"); err != nil {
		return err
	}
	orderKey := int64(1)
	base := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
	for k := 1; k <= n; k++ {
		for o := 0; o < ordersPerCustomer; o++ {
			rows = append(rows, OrderRow(int64(k), orderKey, base, rng))
			orderKey++
		}
		if len(rows) >= batch {
			if err := flush("Orders"); err != nil {
				return err
			}
		}
	}
	if err := flush("Orders"); err != nil {
		return err
	}
	sys.Analyze()
	return nil
}

// CustomerRow generates one customer row.
func CustomerRow(custkey int64, rng *rand.Rand) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(custkey),
		sqltypes.NewString(fmt.Sprintf("Customer#%09d", custkey)),
		sqltypes.NewInt(rng.Int63n(25)),
		sqltypes.NewFloat(round2(AcctBalMin + rng.Float64()*(AcctBalMax-AcctBalMin))),
	}
}

// OrderRow generates one order row for the customer.
func OrderRow(custkey, orderkey int64, base time.Time, rng *rand.Rand) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(custkey),
		sqltypes.NewInt(orderkey),
		sqltypes.NewFloat(round2(900 + rng.Float64()*(500000-900))),
		sqltypes.NewTime(base.Add(time.Duration(rng.Int63n(365*24)) * time.Hour)),
	}
}

func round2(f float64) float64 { return float64(int64(f*100)) / 100 }

// Table 4.1 region ids.
const (
	RegionCR1 = 1 // cust_prj
	RegionCR2 = 2 // orders_prj
)

// SetupCache configures the paper's cache: currency regions CR1
// (interval 15s, delay 5s) and CR2 (interval 10s, delay 5s), views cust_prj
// and orders_prj clustered on their base keys with no secondary indexes
// (Table 4.1 and Section 4's view definitions).
func SetupCache(sys *core.System) error {
	if err := sys.AddRegion(&catalog.Region{
		ID: RegionCR1, Name: "CR1",
		UpdateInterval:    15 * time.Second,
		UpdateDelay:       5 * time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		return err
	}
	if err := sys.AddRegion(&catalog.Region{
		ID: RegionCR2, Name: "CR2",
		UpdateInterval:    10 * time.Second,
		UpdateDelay:       5 * time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		return err
	}
	if err := sys.CreateView(&catalog.View{
		Name:      "cust_prj",
		BaseTable: "Customer",
		Columns:   []string{"c_custkey", "c_name", "c_nationkey", "c_acctbal"},
		RegionID:  RegionCR1,
	}); err != nil {
		return err
	}
	return sys.CreateView(&catalog.View{
		Name:      "orders_prj",
		BaseTable: "Orders",
		Columns:   []string{"o_custkey", "o_orderkey", "o_totalprice"},
		RegionID:  RegionCR2,
	})
}

// NewLoadedSystem creates, loads and caches a complete system — the
// standard starting state for examples, tests and benchmarks. It advances
// simulated time far enough for both regions to have synchronized once.
func NewLoadedSystem(cfg Config) (*core.System, error) {
	sys := core.NewSystem()
	CreateSchema(sys)
	if err := SetupCache(sys); err != nil {
		return nil, err
	}
	if err := Load(sys, cfg); err != nil {
		return nil, err
	}
	// Let every region beat and propagate at least once.
	if err := sys.Run(31 * time.Second); err != nil {
		return nil, err
	}
	return sys, nil
}

// The query schemas of the paper's Section 4 (Table 4.2). $-parameters are
// substituted by fmt verbs here for convenience.

// JoinQuery is schema S1: the Customer-Orders join with a point/range
// predicate on c_custkey and an optional currency clause.
func JoinQuery(custPred, currency string) string {
	q := `SELECT C.c_custkey, C.c_name, C.c_acctbal, O.o_orderkey, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey`
	if custPred != "" {
		q += " WHERE " + custPred
	}
	if currency != "" {
		q += " " + currency
	}
	return q
}

// RangeQuery is schema S2: the single-table range query on c_acctbal used
// by Q6/Q7 and the workload-shift experiment.
func RangeQuery(a, b float64, currency string) string {
	q := fmt.Sprintf(
		"SELECT c_custkey, c_name, c_acctbal FROM Customer WHERE c_acctbal BETWEEN %.2f AND %.2f",
		a, b)
	if currency != "" {
		q += " " + currency
	}
	return q
}

// PointQuery looks up one customer by key (Table 4.4's Q1).
func PointQuery(custkey int64, currency string) string {
	q := fmt.Sprintf("SELECT c_custkey, c_name, c_acctbal FROM Customer WHERE c_custkey = %d", custkey)
	if currency != "" {
		q += " " + currency
	}
	return q
}

// CustomerOrdersQuery joins one customer with its orders (Table 4.4's Q2).
func CustomerOrdersQuery(custkey int64, currency string) string {
	q := fmt.Sprintf(`SELECT C.c_custkey, O.o_orderkey, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey
		WHERE C.c_custkey = %d`, custkey)
	if currency != "" {
		q += " " + currency
	}
	return q
}
