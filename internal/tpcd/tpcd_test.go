package tpcd

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/sqlparser"
)

func TestConfigCardinalities(t *testing.T) {
	cfg := Config{ScaleFactor: 1.0}
	if cfg.Customers() != 150000 || cfg.Orders() != 1500000 {
		t.Fatalf("scale 1.0 = %d / %d", cfg.Customers(), cfg.Orders())
	}
	cfg = Config{ScaleFactor: 0.01}
	if cfg.Customers() != 1500 || cfg.Orders() != 15000 {
		t.Fatalf("scale 0.01 = %d / %d", cfg.Customers(), cfg.Orders())
	}
	if (Config{ScaleFactor: 0}).Customers() != 1 {
		t.Fatal("floor at one customer")
	}
}

func TestRowGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := CustomerRow(7, rng)
	if c[0].Int() != 7 || !strings.HasPrefix(c[1].Str(), "Customer#") {
		t.Fatalf("customer = %v", c)
	}
	if bal := c[3].Float(); bal < AcctBalMin || bal > AcctBalMax {
		t.Fatalf("acctbal = %v", bal)
	}
	if nk := c[2].Int(); nk < 0 || nk > 24 {
		t.Fatalf("nationkey = %v", nk)
	}
	o := OrderRow(7, 70, time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC), rng)
	if o[0].Int() != 7 || o[1].Int() != 70 {
		t.Fatalf("order keys = %v", o)
	}
	if p := o[2].Float(); p < 900 || p > 500000 {
		t.Fatalf("totalprice = %v", p)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := CustomerRow(1, rand.New(rand.NewSource(5)))
	b := CustomerRow(1, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Fatal("same seed must generate identical rows")
	}
}

func TestLoadedSystemEndToEnd(t *testing.T) {
	sys, err := NewLoadedSystem(Config{ScaleFactor: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.QueryBackend("SELECT COUNT(*) FROM Customer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 150 {
		t.Fatalf("customers = %v", res.Rows[0][0])
	}
	res, _ = sys.QueryBackend("SELECT COUNT(*) FROM Orders")
	if res.Rows[0][0].Int() != 1500 {
		t.Fatalf("orders = %v", res.Rows[0][0])
	}
	// Views are populated with identical counts.
	if got := sys.Cache.ViewData("cust_prj").Len(); got != 150 {
		t.Fatalf("cust_prj rows = %d", got)
	}
	if got := sys.Cache.ViewData("orders_prj").Len(); got != 1500 {
		t.Fatalf("orders_prj rows = %d", got)
	}
	// Both regions have synchronized at least once.
	if _, ok := sys.Cache.LastSync(RegionCR1); !ok {
		t.Fatal("CR1 never synced")
	}
	if _, ok := sys.Cache.LastSync(RegionCR2); !ok {
		t.Fatal("CR2 never synced")
	}
	// Statistics reflect the load.
	if got := sys.Cache.Catalog().Table("Customer").Stats.Rows(); got != 150 {
		t.Fatalf("shadow stats = %d", got)
	}
}

func TestQuerySchemasParse(t *testing.T) {
	queries := []string{
		JoinQuery("", ""),
		JoinQuery("C.c_custkey = 1", "CURRENCY 10 ON (C, O)"),
		RangeQuery(0, 100, "CURRENCY 10 ON (Customer)"),
		PointQuery(5, ""),
		CustomerOrdersQuery(5, "CURRENCY 10 ON (C), 10 ON (O)"),
	}
	for _, q := range queries {
		if _, err := sqlparser.ParseSelect(q); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

func TestRegionSettingsMatchTable41(t *testing.T) {
	sys, err := NewLoadedSystem(Config{ScaleFactor: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cr1 := sys.Cache.Catalog().Region(RegionCR1)
	cr2 := sys.Cache.Catalog().Region(RegionCR2)
	if cr1.UpdateInterval != 15*time.Second || cr1.UpdateDelay != 5*time.Second {
		t.Fatalf("CR1 = %+v", cr1)
	}
	if cr2.UpdateInterval != 10*time.Second || cr2.UpdateDelay != 5*time.Second {
		t.Fatalf("CR2 = %+v", cr2)
	}
}
