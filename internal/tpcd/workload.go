package tpcd

import (
	"fmt"
	"math/rand"
	"time"
)

// Workload shaping for the macro-benchmark (internal/load): deterministic
// Zipf-skewed key selection over the generated customer population and a
// weighted query mix over the paper's Section 4 query schemas. Everything
// here is seeded — two samplers built from the same arguments produce the
// same draw sequence, which is what makes same-seed load reports
// byte-identical.

// KeySampler draws customer keys with Zipf-skewed popularity: rank 0 (the
// hottest customer) maps to c_custkey 1, rank 1 to key 2, and so on. The
// skew models the real-traffic property the microbenches cannot: a small
// set of hot keys dominates, so cached-view hits and currency-guard
// decisions concentrate where replication lag hurts most.
type KeySampler struct {
	zipf *rand.Zipf
	keys int64
}

// Default Zipf shape for the load generator: s=1.2 is a moderately heavy
// skew (top-10 keys draw roughly half the traffic over a few hundred keys),
// v=1 anchors the distribution at rank 0.
const (
	DefaultZipfS = 1.2
	DefaultZipfV = 1.0
)

// NewKeySampler builds a sampler over keys 1..n. s must be > 1 and v >= 1
// (rand.NewZipf's contract); values at or below the minimum fall back to
// the defaults. The sampler is NOT safe for concurrent use; callers own
// the draw order, which is part of the deterministic schedule.
func NewKeySampler(seed int64, n int, s, v float64) *KeySampler {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = DefaultZipfS
	}
	if v < 1 {
		v = DefaultZipfV
	}
	rng := rand.New(rand.NewSource(seed))
	return &KeySampler{
		zipf: rand.NewZipf(rng, s, v, uint64(n-1)),
		keys: int64(n),
	}
}

// Keys returns the size of the key population.
func (k *KeySampler) Keys() int64 { return k.keys }

// Next draws one customer key in [1, Keys()], hottest first by rank.
func (k *KeySampler) Next() int64 {
	return int64(k.zipf.Uint64()) + 1
}

// QueryKind is one of the workload's query templates.
type QueryKind int

// The load generator's query templates, in increasing execution weight.
const (
	// KindPoint is the paper's Q1: a point lookup on Customer (region CR1).
	KindPoint QueryKind = iota
	// KindJoin is the paper's Q2: one customer joined with its orders,
	// touching both currency regions (CR1 and CR2).
	KindJoin
)

// Mix is a weighted query-template mix. Weights are relative; zero-weight
// kinds never fire.
type Mix struct {
	PointWeight int
	JoinWeight  int
}

// DefaultMix is the load generator's default: mostly point lookups with a
// tail of cross-region joins, the shape of an order-status workload.
func DefaultMix() Mix { return Mix{PointWeight: 9, JoinWeight: 1} }

// Pick draws one query kind from the mix using the caller's seeded rng.
func (m Mix) Pick(rng *rand.Rand) QueryKind {
	total := m.PointWeight + m.JoinWeight
	if total <= 0 {
		return KindPoint
	}
	if rng.Intn(total) < m.PointWeight {
		return KindPoint
	}
	return KindJoin
}

// CurrencyMS renders a single-table currency clause with a millisecond
// bound on Customer, the form the point query takes.
func CurrencyMS(bound time.Duration) string {
	return fmt.Sprintf("CURRENCY %d MS ON (Customer)", bound.Milliseconds())
}

// Query renders the SQL for one (kind, key, bound) draw against the
// standard TPC-D cache configuration. An unbounded query (bound <= 0)
// carries no currency clause.
func Query(kind QueryKind, key int64, bound time.Duration) string {
	switch kind {
	case KindJoin:
		if bound <= 0 {
			return CustomerOrdersQuery(key, "")
		}
		ms := bound.Milliseconds()
		return CustomerOrdersQuery(key, fmt.Sprintf("CURRENCY %d MS ON (C), %d MS ON (O)", ms, ms))
	default:
		if bound <= 0 {
			return PointQuery(key, "")
		}
		return PointQuery(key, CurrencyMS(bound))
	}
}
