package tpcd

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// Two samplers built from the same arguments must produce the same draw
// sequence — the load generator's byte-identical reports depend on it.
func TestKeySamplerDeterministic(t *testing.T) {
	a := NewKeySampler(2004, 750, DefaultZipfS, DefaultZipfV)
	b := NewKeySampler(2004, 750, DefaultZipfS, DefaultZipfV)
	for i := 0; i < 10000; i++ {
		ka, kb := a.Next(), b.Next()
		if ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
		if ka < 1 || ka > 750 {
			t.Fatalf("draw %d out of range [1,750]: %d", i, ka)
		}
	}
	c := NewKeySampler(2005, 750, DefaultZipfS, DefaultZipfV)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same first 100 draws")
	}
}

// The distribution must actually be skewed: the hottest key must be the
// most frequent, and the head of the distribution must dominate the tail.
func TestKeySamplerZipfShape(t *testing.T) {
	const n, draws = 750, 50000
	k := NewKeySampler(2004, n, DefaultZipfS, DefaultZipfV)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[k.Next()]++
	}
	// Key 1 (rank 0) is the mode.
	for key := 2; key <= n; key++ {
		if counts[key] > counts[1] {
			t.Fatalf("key %d (%d draws) hotter than key 1 (%d draws)", key, counts[key], counts[1])
		}
	}
	// The top 10 keys take at least 40% of the traffic; the bottom half
	// takes under 20%. (Deterministic given the fixed seed.)
	sorted := append([]int(nil), counts[1:]...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top10 := 0
	for _, c := range sorted[:10] {
		top10 += c
	}
	if got := float64(top10) / draws; got < 0.40 {
		t.Errorf("top-10 keys drew %.1f%% of traffic, want >= 40%%", got*100)
	}
	tail := 0
	for _, c := range sorted[n/2:] {
		tail += c
	}
	if got := float64(tail) / draws; got > 0.20 {
		t.Errorf("bottom-half keys drew %.1f%% of traffic, want <= 20%%", got*100)
	}
}

func TestMixPickAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := DefaultMix()
	var points, joins int
	for i := 0; i < 1000; i++ {
		switch m.Pick(rng) {
		case KindPoint:
			points++
		case KindJoin:
			joins++
		}
	}
	if points == 0 || joins == 0 {
		t.Fatalf("mix degenerate: %d points, %d joins", points, joins)
	}
	if points < joins {
		t.Fatalf("point weight 9:1 but drew %d points vs %d joins", points, joins)
	}

	q := Query(KindPoint, 17, 2*time.Second)
	if !strings.Contains(q, "c_custkey = 17") || !strings.Contains(q, "CURRENCY 2000 MS ON (Customer)") {
		t.Errorf("point query malformed: %s", q)
	}
	q = Query(KindJoin, 5, 1500*time.Millisecond)
	if !strings.Contains(q, "CURRENCY 1500 MS ON (C), 1500 MS ON (O)") {
		t.Errorf("join query malformed: %s", q)
	}
	if q := Query(KindPoint, 3, 0); strings.Contains(q, "CURRENCY") {
		t.Errorf("unbounded query carries a currency clause: %s", q)
	}
}
