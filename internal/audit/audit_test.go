package audit

import (
	"sync"
	"testing"
	"time"

	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/txn"
)

var t0 = time.Date(2004, 6, 13, 0, 0, 0, 0, time.UTC)

func newTestAuditor(cfg Config) *Auditor {
	a := New(obs.NewRegistry(), cfg)
	a.Enable()
	return a
}

// commit appends one single-table commit at t0+at.
func commit(a *Auditor, seq int64, at time.Duration, table string) {
	a.ObserveCommit(txn.CommitRecord{
		TS:      txn.Timestamp{Seq: seq, At: t0.Add(at)},
		Changes: []txn.Change{{Table: table, Op: txn.OpUpdate, New: sqltypes.Row{sqltypes.NewInt(1)}}},
	})
}

// read builds a guard-approved local serve of region 1's copy of T.
func read(bound, serveAt time.Duration, syncSeq int64) ReadEvent {
	return ReadEvent{
		Label:     "Guard(t_prj|Remote(T))",
		Region:    1,
		BoundNS:   int64(bound),
		SyncSeq:   syncSeq,
		ServeTSNS: t0.Add(serveAt).UnixNano(),
	}
}

func TestCheckerClassifiesOKAndViolation(t *testing.T) {
	a := newTestAuditor(Config{})
	a.RegisterObject(1, "T", 0)
	commit(a, 1, 0, "T")
	commit(a, 2, 10*time.Second, "T")
	a.ObserveApply(1, 1, t0.Add(2*time.Second))

	// Synced through seq 1, served at +12s: stale since the seq-2 commit at
	// +10s, delivered staleness 2s. Within a 5s bound: OK.
	a.Reads([]ReadEvent{read(5*time.Second, 12*time.Second, 1)})
	s := a.Summary()
	if s.ReadsChecked != 1 || s.OK != 1 || s.ViolationsTotal != 0 {
		t.Fatalf("ok serve: %+v", s.Tally)
	}

	// Same sync point at +30s: delivered 20s against a 5s bound — violation
	// with the full evidence chain.
	a.Reads([]ReadEvent{read(5*time.Second, 30*time.Second, 1)})
	s = a.Summary()
	if s.CurrencyViolations != 1 || len(s.RecentViolations) != 1 {
		t.Fatalf("violation not recorded: %+v", s.Tally)
	}
	v := s.RecentViolations[0]
	if v.Class != ClassViolationCurrency || v.Object != "T" || v.Region != 1 {
		t.Fatalf("evidence = %+v", v)
	}
	if v.BoundNS != int64(5*time.Second) || v.DeliveredNS != int64(20*time.Second) ||
		v.ExcessNS != int64(15*time.Second) {
		t.Fatalf("bound/delivered/excess = %d/%d/%d", v.BoundNS, v.DeliveredNS, v.ExcessNS)
	}
	if v.StaleSeq != 2 || v.SyncSeq != 1 {
		t.Fatalf("stale/sync seq = %d/%d", v.StaleSeq, v.SyncSeq)
	}
	if v.ReplLagNS != int64(28*time.Second) {
		t.Fatalf("repl lag = %v", time.Duration(v.ReplLagNS))
	}
}

func TestCheckerDisclosedUnboundedRemote(t *testing.T) {
	a := newTestAuditor(Config{})
	a.RegisterObject(1, "T", 0)
	commit(a, 1, 0, "T")
	commit(a, 2, 10*time.Second, "T")

	degraded := read(time.Second, 30*time.Second, 1)
	degraded.Degraded = true
	stale := ReadEvent{ServedStale: true, ServeTSNS: t0.Add(30 * time.Second).UnixNano()}
	unbounded := read(0, 30*time.Second, 1)
	remote := read(time.Second, 30*time.Second, 1)
	remote.Chosen = 1
	a.Reads([]ReadEvent{degraded, stale, unbounded, remote})

	s := a.Summary()
	if s.ReadsChecked != 4 {
		t.Fatalf("checked = %d", s.ReadsChecked)
	}
	// Broken promises that were disclosed to the client are not violations;
	// remote serves read the master and are OK regardless of replication.
	if s.Disclosed != 2 || s.Unbounded != 1 || s.OK != 1 || s.ViolationsTotal != 0 {
		t.Fatalf("tally = %+v", s.Tally)
	}
}

func TestCheckerBaseSeqOverridesAgentSeq(t *testing.T) {
	a := newTestAuditor(Config{})
	// The view's snapshot was taken at seq 2 even though the agent's applied
	// sequence still reads 0 — the effective sync point is the snapshot.
	a.RegisterObject(1, "T", 2)
	commit(a, 1, 0, "T")
	commit(a, 2, 10*time.Second, "T")
	a.Reads([]ReadEvent{read(5*time.Second, 30*time.Second, 0)})
	if s := a.Summary(); s.OK != 1 || s.ViolationsTotal != 0 {
		t.Fatalf("snapshot-synced copy flagged: %+v", s.Tally)
	}
	// Re-registration keeps the most conservative (smallest) snapshot.
	a.RegisterObject(1, "T", 5)
	a.chk.mu.Lock()
	base := a.chk.objects[1]["T"]
	a.chk.mu.Unlock()
	if base != 2 {
		t.Fatalf("re-registration raised baseSeq to %d", base)
	}
}

func TestCheckerUncheckedOutsideRetainedWindow(t *testing.T) {
	a := newTestAuditor(Config{MaxCommits: 16})
	a.RegisterObject(1, "T", 0)
	// 40 commits with MaxCommits 16: compaction leaves a window starting well
	// past seq 1.
	for i := 1; i <= 40; i++ {
		commit(a, int64(i), time.Duration(i)*time.Second, "T")
	}
	// A read synced at seq 1 needs history the checker compacted away.
	a.Reads([]ReadEvent{read(5*time.Second, 50*time.Second, 1)})
	s := a.Summary()
	if s.Unchecked != 1 || s.ViolationsTotal != 0 {
		t.Fatalf("pre-window read not unchecked: %+v", s.Tally)
	}
	// A read synced to the newest commit still checks fine.
	a.Reads([]ReadEvent{read(5*time.Second, 50*time.Second, 40)})
	if s := a.Summary(); s.OK != 1 {
		t.Fatalf("in-window read: %+v", s.Tally)
	}
}

func TestThetaConsistencyCheck(t *testing.T) {
	// Honest multi-region serves never trip the Θ check: distance(A,B) is at
	// most the older copy's delivered currency, which the per-read check
	// already bounded. Assert that soundness end to end first.
	a := newTestAuditor(Config{})
	a.RegisterObject(1, "T", 0)
	a.RegisterObject(2, "U", 0)
	commit(a, 1, 0, "T")
	commit(a, 2, 0, "U")
	commit(a, 3, 10*time.Second, "U")
	commit(a, 4, 40*time.Second, "T")
	evT := read(5*time.Second, 41*time.Second, 4)
	evU := ReadEvent{
		Label: "Guard(u_prj|Remote(U))", Region: 2,
		BoundNS: int64(40 * time.Second), SyncSeq: 2,
		ServeTSNS: t0.Add(41 * time.Second).UnixNano(),
	}
	a.Reads([]ReadEvent{evT, evU})
	if s := a.Summary(); s.ViolationsTotal != 0 || s.OK != 2 {
		t.Fatalf("honest multi-region pair: %+v", s.Tally)
	}

	// The check itself (the safety net the soundness argument says honest
	// runs never need): a pair whose Θ-bound exceeds every declared bound.
	// distance(T@4, U@2) = currency(U, H_4) = time(4) - time(3) = 30s.
	c := a.chk
	c.mu.Lock()
	locals := []localServe{
		{ev: ReadEvent{Query: 9, Region: 1, SyncSeq: 4,
			ServeTSNS: t0.Add(41 * time.Second).UnixNano()}, asOf: 4, bound: int64(5 * time.Second)},
		{ev: ReadEvent{Query: 9, Region: 2, SyncSeq: 2,
			ServeTSNS: t0.Add(41 * time.Second).UnixNano()}, asOf: 4, bound: int64(5 * time.Second)},
	}
	v, bad := c.thetaLocked(9, locals)
	c.mu.Unlock()
	if !bad {
		t.Fatal("Θ excess not flagged")
	}
	if v.Class != ClassViolationConsistency || v.Object != "T,U" {
		t.Fatalf("evidence = %+v", v)
	}
	if v.DeliveredNS != int64(30*time.Second) || v.BoundNS != int64(5*time.Second) ||
		v.ExcessNS != int64(25*time.Second) {
		t.Fatalf("Θ/bound/excess = %d/%d/%d", v.DeliveredNS, v.BoundNS, v.ExcessNS)
	}

	// Single-region sets are mutually consistent by construction.
	c.mu.Lock()
	_, bad = c.thetaLocked(9, []localServe{locals[0], locals[0]})
	c.mu.Unlock()
	if bad {
		t.Fatal("single-region set flagged")
	}
}

func TestRingOverflowCountsDrops(t *testing.T) {
	r := newRing[int](16)
	for i := 0; i < 20; i++ {
		evicted := r.push(i)
		if evicted != (i >= 16) {
			t.Fatalf("push %d evicted=%v", i, evicted)
		}
	}
	if r.pushed() != 20 || r.dropped() != 4 {
		t.Fatalf("pushed/dropped = %d/%d", r.pushed(), r.dropped())
	}
	snap := r.snapshot()
	if len(snap) != 16 || snap[0] != 4 || snap[15] != 19 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 16}, {16, 16}, {17, 32}, {1000, 1024}} {
		if got := len(newRing[int](c.ask).slots); got != c.want {
			t.Fatalf("newRing(%d) = %d slots, want %d", c.ask, got, c.want)
		}
	}
}

func TestReplayMatchesOnline(t *testing.T) {
	a := newTestAuditor(Config{})
	a.RegisterObject(1, "T", 0)
	commit(a, 1, 0, "T")
	a.ObserveApply(1, 1, t0.Add(time.Second))
	for i := int64(2); i <= 30; i++ {
		commit(a, i, time.Duration(i)*time.Second, "T")
		sync := i - 3
		if sync < 1 {
			sync = 1
		}
		a.ObserveApply(1, sync, t0.Add(time.Duration(i)*time.Second))
		// Mix of outcomes: some within bound, some violations, one degraded.
		ev := read(4*time.Second, time.Duration(i)*time.Second+500*time.Millisecond, sync)
		if i%7 == 0 {
			ev.Degraded = true
		}
		if i%5 == 0 {
			ev.BoundNS = int64(500 * time.Millisecond)
		}
		a.Reads([]ReadEvent{ev})
	}
	online := a.Summary()
	if online.ViolationsTotal == 0 || online.OK == 0 || online.Disclosed == 0 {
		t.Fatalf("workload not mixed: %+v", online.Tally)
	}
	if online.DroppedCommits+online.DroppedReads+online.DroppedApplies != 0 {
		t.Fatalf("unexpected drops: %+v", online)
	}
	replay := a.Replay()
	if replay.Tally != online.Tally {
		t.Fatalf("replay tally %+v != online %+v", replay.Tally, online.Tally)
	}
	if len(replay.RecentViolations) != len(online.RecentViolations) {
		t.Fatalf("replay recent %d != online %d",
			len(replay.RecentViolations), len(online.RecentViolations))
	}
	for i := range replay.RecentViolations {
		if replay.RecentViolations[i] != online.RecentViolations[i] {
			t.Fatalf("replay violation %d = %+v, online %+v",
				i, replay.RecentViolations[i], online.RecentViolations[i])
		}
	}
}

func TestSummaryNilSafe(t *testing.T) {
	var a *Auditor
	if a.Enabled() {
		t.Fatal("nil auditor enabled")
	}
	a.RegisterObject(1, "T", 0) // must not panic
	s := a.Summary()
	if s.Enabled || s.ReadsChecked != 0 || s.RecentViolations == nil {
		t.Fatalf("nil summary = %+v", s)
	}
}

func TestDisabledHooksRecordNothing(t *testing.T) {
	a := New(obs.NewRegistry(), Config{})
	commit(a, 1, 0, "T")
	a.ObserveApply(1, 1, t0)
	a.Reads([]ReadEvent{read(time.Second, time.Second, 0)})
	s := a.Summary()
	if s.ReadsChecked != 0 || s.Commits != 0 || s.Applies != 0 {
		t.Fatalf("disabled auditor recorded: %+v", s)
	}
}

// TestDisabledPathAllocatesNothing asserts the zero-overhead claim: with the
// auditor disabled every hook is one atomic load and no allocation, so the
// instrumentation can stay wired into production builds.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	a := New(obs.NewRegistry(), Config{})
	rec := txn.CommitRecord{TS: txn.Timestamp{Seq: 1, At: t0}}
	evs := []ReadEvent{read(time.Second, time.Second, 0)}
	if n := testing.AllocsPerRun(1000, func() {
		a.ObserveCommit(rec)
		a.ObserveApply(1, 1, t0)
		a.Reads(evs)
	}); n != 0 {
		t.Fatalf("disabled hooks allocate %.1f allocs/op", n)
	}
	var nilA *Auditor
	if n := testing.AllocsPerRun(1000, func() {
		if nilA.Enabled() {
			t.Fatal("nil enabled")
		}
	}); n != 0 {
		t.Fatalf("nil Enabled allocates %.1f allocs/op", n)
	}
}

// TestConcurrentRecordingConservesCounts hammers the auditor from concurrent
// recorders while snapshots run, then checks conservation: every recorded
// read is classified exactly once and the classes sum to the total.
func TestConcurrentRecordingConservesCounts(t *testing.T) {
	a := newTestAuditor(Config{CommitRing: 64, ReadRing: 128, ApplyRing: 64})
	a.RegisterObject(1, "T", 0)
	const writers, per = 4, 200
	var wg sync.WaitGroup
	var seq int64
	var seqMu sync.Mutex
	nextSeq := func() int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		seq++
		return seq
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// Every read classifies as exactly one of these five; consistency
				// violations are query-level extras, not per-read classes.
				s := a.Summary()
				if got := s.OK + s.CurrencyViolations +
					s.Disclosed + s.Unbounded + s.Unchecked; got != s.ReadsChecked {
					t.Errorf("mid-run conservation: classes sum %d, checked %d", got, s.ReadsChecked)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n := nextSeq()
				commit(a, n, time.Duration(n)*time.Millisecond, "T")
				a.ObserveApply(1, n, t0.Add(time.Duration(n)*time.Millisecond))
				ev := read(time.Duration(w+1)*time.Millisecond,
					time.Duration(n)*time.Millisecond, n-1)
				a.Reads([]ReadEvent{ev})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := a.Summary()
	if s.ReadsChecked != writers*per {
		t.Fatalf("checked %d of %d", s.ReadsChecked, writers*per)
	}
	if got := s.OK + s.CurrencyViolations +
		s.Disclosed + s.Unbounded + s.Unchecked; got != s.ReadsChecked {
		t.Fatalf("classes sum %d, checked %d", got, s.ReadsChecked)
	}
	// Ring accounting conserves too: pushed = retained capacity + dropped.
	if s.DroppedReads != uint64(writers*per)-uint64(len(a.reads.slots)) {
		t.Fatalf("read drops = %d", s.DroppedReads)
	}
}
