package audit

import (
	"sort"
	"sync/atomic"
	"time"

	"relaxedcc/internal/obs"
	"relaxedcc/internal/txn"
)

// Config sizes the auditor's bounded state.
type Config struct {
	// CommitRing / ReadRing / ApplyRing bound the recorded event rings
	// (rounded up to powers of two). Overwritten events count as dropped;
	// they only limit offline replay, not the online checker.
	CommitRing int
	ReadRing   int
	ApplyRing  int
	// MaxCommits bounds the online checker's retained history window; past
	// it the oldest half is compacted away and reads older than the window
	// classify as unchecked.
	MaxCommits int
	// MaxRecent bounds the retained violation evidence list.
	MaxRecent int
}

// DefaultConfig sizes the rings for a harness run: large enough that a
// chaos/shift/load sweep replays offline without drops, small enough to be
// always-on.
func DefaultConfig() Config {
	return Config{CommitRing: 4096, ReadRing: 16384, ApplyRing: 2048, MaxCommits: 65536, MaxRecent: 32}
}

// Auditor records the system's C&C history into bounded rings and checks
// every served read against the formal semantics online. All hooks are
// behind one atomic enabled flag: a disabled auditor costs one atomic load
// per hook and allocates nothing.
//
// Metric names (registered on the cache's registry; see DESIGN.md
// "Delivered-guarantee auditing"):
//
//	audit_reads_checked_total        read events folded through the checker
//	audit_reads_ok_total             reads that kept their promise
//	audit_violations_total{class}    silent violations (currency, consistency)
//	audit_disclosed_total            broken-but-disclosed serves (degraded, stale)
//	audit_unbounded_total            reads with no finite bound to audit
//	audit_unchecked_total            reads outside the retained history window
//	audit_events_dropped_total{kind} ring overwrites (commit, read, apply)
//	audit_excess_staleness_ns        histogram: delivered minus declared on violations
//	audit_slack_ns                   histogram: declared minus delivered on OK reads
type Auditor struct {
	enabled atomic.Bool
	qseq    atomic.Uint64

	cfg     Config
	commits *ring[CommitEvent]
	reads   *ring[ReadEvent]
	applies *ring[ApplyEvent]
	chk     *checker

	mChecked        *obs.Counter
	mOK             *obs.Counter
	mViolations     *obs.CounterVec
	mDisclosed      *obs.Counter
	mUnbounded      *obs.Counter
	mUnchecked      *obs.Counter
	mDroppedCommits *obs.Counter
	mDroppedReads   *obs.Counter
	mDroppedApplies *obs.Counter
	mExcess         *obs.Histogram
	mSlack          *obs.Histogram
}

// New creates a disabled auditor and registers its instruments on reg.
func New(reg *obs.Registry, cfg Config) *Auditor {
	def := DefaultConfig()
	if cfg.CommitRing <= 0 {
		cfg.CommitRing = def.CommitRing
	}
	if cfg.ReadRing <= 0 {
		cfg.ReadRing = def.ReadRing
	}
	if cfg.ApplyRing <= 0 {
		cfg.ApplyRing = def.ApplyRing
	}
	if cfg.MaxCommits <= 0 {
		cfg.MaxCommits = def.MaxCommits
	}
	if cfg.MaxRecent <= 0 {
		cfg.MaxRecent = def.MaxRecent
	}
	dropped := reg.CounterVec("audit_events_dropped_total", "kind")
	return &Auditor{
		cfg:             cfg,
		commits:         newRing[CommitEvent](cfg.CommitRing),
		reads:           newRing[ReadEvent](cfg.ReadRing),
		applies:         newRing[ApplyEvent](cfg.ApplyRing),
		chk:             newChecker(cfg.MaxCommits, cfg.MaxRecent),
		mChecked:        reg.Counter("audit_reads_checked_total"),
		mOK:             reg.Counter("audit_reads_ok_total"),
		mViolations:     reg.CounterVec("audit_violations_total", "class"),
		mDisclosed:      reg.Counter("audit_disclosed_total"),
		mUnbounded:      reg.Counter("audit_unbounded_total"),
		mUnchecked:      reg.Counter("audit_unchecked_total"),
		mDroppedCommits: dropped.With("commit"),
		mDroppedReads:   dropped.With("read"),
		mDroppedApplies: dropped.With("apply"),
		mExcess:         reg.Histogram("audit_excess_staleness_ns"),
		mSlack:          reg.Histogram("audit_slack_ns"),
	}
}

// Enable turns recording and checking on.
func (a *Auditor) Enable() { a.enabled.Store(true) }

// Disable turns the auditor off; hooks return immediately.
func (a *Auditor) Disable() { a.enabled.Store(false) }

// Enabled reports whether the auditor is recording. Nil-safe, so callers
// keep a plain field and one branch on the hot path.
func (a *Auditor) Enabled() bool { return a != nil && a.enabled.Load() }

// ObserveCommit records one committed master transaction. It is installed
// as the txn.Log observer and runs synchronously under the log's lock, so
// commit events arrive in sequence order.
func (a *Auditor) ObserveCommit(rec txn.CommitRecord) {
	if !a.Enabled() {
		return
	}
	ev := CommitEvent{Seq: rec.TS.Seq, AtNS: rec.TS.At.UnixNano(), Tables: commitTables(rec.Changes)}
	if a.commits.push(ev) {
		a.mDroppedCommits.Inc()
	}
	a.chk.addCommit(ev)
}

// commitTables returns the distinct base tables a commit modified, in
// first-touch order.
func commitTables(changes []txn.Change) []string {
	var out []string
	for _, ch := range changes {
		seen := false
		for _, t := range out {
			if t == ch.Table {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, ch.Table)
		}
	}
	return out
}

// ObserveApply records one replication propagation step; matches the
// repl.Agent apply-sink signature.
func (a *Auditor) ObserveApply(region int, throughSeq int64, at time.Time) {
	if !a.Enabled() {
		return
	}
	ev := ApplyEvent{Region: region, ThroughSeq: throughSeq, AtNS: at.UnixNano()}
	if a.applies.push(ev) {
		a.mDroppedApplies.Inc()
	}
	a.chk.noteApply(ev)
}

// RegisterObject declares that a region serves the given base table from a
// snapshot taken at baseSeq (the replication subscription's start
// sequence). Wiring layers call it for every subscribed view.
func (a *Auditor) RegisterObject(region int, table string, baseSeq int64) {
	if a == nil {
		return
	}
	a.chk.registerObject(region, table, baseSeq)
}

// Reads records and checks one executed query's guard decisions. The slice
// is stamped with a fresh query id, recorded, folded through the online
// checker, and the outcome counters updated. Callers hand over ownership of
// evs.
func (a *Auditor) Reads(evs []ReadEvent) {
	if !a.Enabled() || len(evs) == 0 {
		return
	}
	q := a.qseq.Add(1)
	for i := range evs {
		evs[i].Query = q
		if a.reads.push(evs[i]) {
			a.mDroppedReads.Inc()
		}
	}
	outs, viols := a.chk.checkQuery(evs)
	for _, out := range outs {
		a.mChecked.Inc()
		switch out.class {
		case ClassOK:
			a.mOK.Inc()
			a.mSlack.Observe(out.slackNS)
		case ClassDisclosed:
			a.mDisclosed.Inc()
		case ClassUnbounded:
			a.mUnbounded.Inc()
		case ClassUnchecked:
			a.mUnchecked.Inc()
		}
	}
	for _, v := range viols {
		a.mViolations.With(string(v.Class)).Inc()
		a.mExcess.Observe(v.ExcessNS)
	}
}

// Summary is the /audit payload: the classification ledger plus the most
// recent violations with full evidence.
type Summary struct {
	Enabled bool `json:"enabled"`
	Tally
	ViolationsTotal  int64       `json:"violations_total"`
	RecentViolations []Violation `json:"recent_violations"`
	// Ring accounting: events recorded and overwritten. Drops bound offline
	// replay coverage; the online ledger above is complete regardless.
	Commits        uint64 `json:"commits"`
	Applies        uint64 `json:"applies"`
	DroppedCommits uint64 `json:"dropped_commits"`
	DroppedReads   uint64 `json:"dropped_reads"`
	DroppedApplies uint64 `json:"dropped_applies"`
}

// Summary snapshots the auditor's ledger. Nil-safe (a disabled zero
// summary), so the ops surface can always render something.
func (a *Auditor) Summary() Summary {
	if a == nil {
		return Summary{RecentViolations: []Violation{}}
	}
	tally, recent := a.chk.summary()
	if recent == nil {
		recent = []Violation{}
	}
	return Summary{
		Enabled:          a.enabled.Load(),
		Tally:            tally,
		ViolationsTotal:  tally.Violations(),
		RecentViolations: recent,
		Commits:          a.commits.pushed(),
		Applies:          a.applies.pushed(),
		DroppedCommits:   a.commits.dropped(),
		DroppedReads:     a.reads.dropped(),
		DroppedApplies:   a.applies.dropped(),
	}
}

// Replay re-checks the recorded history offline: a fresh checker folds the
// ring contents in virtual-time order (commits and applies before the reads
// they precede, reads grouped by query). When no events were dropped the
// replayed ledger must equal the online one — the exhaustive-verification
// mode for harness runs.
func (a *Auditor) Replay() Summary {
	chk := newChecker(a.cfg.MaxCommits, a.cfg.MaxRecent)
	a.chk.mu.Lock()
	for region, tables := range a.chk.objects {
		for table, baseSeq := range tables {
			// Direct map fill: registerObject would retake the fresh
			// checker's lock needlessly, and chk is still private here.
			m := chk.objects[region]
			if m == nil {
				m = map[string]int64{}
				chk.objects[region] = m
			}
			m[table] = baseSeq
		}
	}
	a.chk.mu.Unlock()

	commits := a.commits.snapshot()
	applies := a.applies.snapshot()
	reads := a.reads.snapshot()

	// Group reads by query id, ordered by each group's latest serve time so
	// later applies land before the reads that observed them.
	groups := map[uint64][]ReadEvent{}
	for _, ev := range reads {
		groups[ev.Query] = append(groups[ev.Query], ev)
	}
	type step struct {
		atNS int64
		kind int // 0 commit, 1 apply, 2 read group — commits first on ties
		ci   int
		ai   int
		q    uint64
	}
	steps := make([]step, 0, len(commits)+len(applies)+len(groups))
	for i, ev := range commits {
		steps = append(steps, step{atNS: ev.AtNS, kind: 0, ci: i})
	}
	for i, ev := range applies {
		steps = append(steps, step{atNS: ev.AtNS, kind: 1, ai: i})
	}
	for q, evs := range groups {
		at := int64(0)
		for _, ev := range evs {
			if ev.ServeTSNS > at {
				at = ev.ServeTSNS
			}
		}
		steps = append(steps, step{atNS: at, kind: 2, q: q})
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].atNS != steps[j].atNS {
			return steps[i].atNS < steps[j].atNS
		}
		if steps[i].kind != steps[j].kind {
			return steps[i].kind < steps[j].kind
		}
		switch steps[i].kind {
		case 0:
			return commits[steps[i].ci].Seq < commits[steps[j].ci].Seq
		case 1:
			return applies[steps[i].ai].ThroughSeq < applies[steps[j].ai].ThroughSeq
		default:
			return steps[i].q < steps[j].q
		}
	})
	for _, st := range steps {
		switch st.kind {
		case 0:
			chk.addCommit(commits[st.ci])
		case 1:
			chk.noteApply(applies[st.ai])
		default:
			chk.checkQuery(groups[st.q])
		}
	}
	tally, recent := chk.summary()
	if recent == nil {
		recent = []Violation{}
	}
	return Summary{
		Enabled:          a.enabled.Load(),
		Tally:            tally,
		ViolationsTotal:  tally.Violations(),
		RecentViolations: recent,
		Commits:          uint64(len(commits)),
		Applies:          uint64(len(applies)),
	}
}
