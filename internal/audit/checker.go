package audit

import (
	"sort"
	"strings"
	"sync"
	"time"

	"relaxedcc/internal/semantics"
)

// Class classifies one checked read.
type Class string

// Read outcome classes. Degraded and serve-stale answers are "disclosed":
// the promise was broken, but the engine said so to the client (the
// paper's violation actions made visible), so they are not counted as
// silent violations — those are what the auditor exists to catch.
const (
	ClassOK                   Class = "ok"
	ClassViolationCurrency    Class = "currency"
	ClassViolationConsistency Class = "consistency"
	ClassDisclosed            Class = "disclosed"
	ClassUnbounded            Class = "unbounded"
	ClassUnchecked            Class = "unchecked"
)

// Violation is one broken promise with its full evidence chain: the object
// and declared bound, the currency actually delivered, the commit that made
// the serve stale, and the replication lag that contributed.
type Violation struct {
	Query  uint64 `json:"query"`
	Class  Class  `json:"class"`
	Region int    `json:"region"`
	// Object names the audited object (base table) that broke the bound;
	// for consistency violations, the comma-joined object set.
	Object string `json:"object"`
	Label  string `json:"label,omitempty"`
	// BoundNS is the declared currency bound (for consistency violations,
	// the largest bound among the query's guards — the Θ the session could
	// rely on).
	BoundNS int64 `json:"bound_ns"`
	// DeliveredNS is the staleness actually delivered: serve time minus the
	// onset of staleness (for consistency violations, the object set's
	// Θ-bound per the formal model).
	DeliveredNS int64 `json:"delivered_ns"`
	// ExcessNS is DeliveredNS minus BoundNS.
	ExcessNS int64 `json:"excess_ns"`
	// SyncSeq / StaleSeq / StaleAtNS locate the evidence in the history:
	// the version the region had applied, and the first commit after it
	// that modified the object (when the staleness began).
	SyncSeq   int64 `json:"sync_seq"`
	StaleSeq  int64 `json:"stale_seq"`
	StaleAtNS int64 `json:"stale_at_ns"`
	ServeTSNS int64 `json:"serve_ts_ns"`
	// GuardStalenessNS is what the guard *believed* the staleness was; the
	// gap between it and DeliveredNS is the lie the auditor caught.
	GuardStalenessNS int64 `json:"guard_staleness_ns"`
	// ReplLagNS is how long before the serve the region's replication last
	// made progress — the contributing lag (0 if unknown).
	ReplLagNS int64 `json:"repl_lag_ns"`
}

// Tally is the running classification ledger.
type Tally struct {
	ReadsChecked          int64 `json:"reads_checked"`
	OK                    int64 `json:"ok"`
	CurrencyViolations    int64 `json:"currency_violations"`
	ConsistencyViolations int64 `json:"consistency_violations"`
	Disclosed             int64 `json:"disclosed"`
	Unbounded             int64 `json:"unbounded"`
	Unchecked             int64 `json:"unchecked"`
}

// Violations returns the total silent violations of both classes.
func (t Tally) Violations() int64 { return t.CurrencyViolations + t.ConsistencyViolations }

// outcome is one read's classification with its margin, fed back to the
// auditor's metrics.
type outcome struct {
	class    Class
	slackNS  int64
	excessNS int64
}

// checker folds recorded events through the semantics oracle. It maintains
// the master history incrementally (bounded: the oldest half is compacted
// away past maxCommits, and reads older than the retained window classify
// as unchecked rather than guessed at).
type checker struct {
	mu      sync.Mutex
	hist    *semantics.History
	commits []CommitEvent // retained window, ascending seq
	// objects maps region -> base table -> the commit sequence the region's
	// initial snapshot of that table reflects. A region agent's applied
	// sequence starts at 0 even though its views were populated at their
	// subscription snapshot, so the effective sync point of a copy is
	// max(agent seq, snapshot seq).
	objects map[int]map[string]int64
	// lastApplyNS tracks each region's most recent apply event, the
	// contributing-replication-lag evidence on violations.
	lastApplyNS map[int]int64

	maxCommits int
	maxRecent  int

	tally  Tally
	recent []Violation
}

func newChecker(maxCommits, maxRecent int) *checker {
	if maxCommits < 16 {
		maxCommits = 16
	}
	if maxRecent < 1 {
		maxRecent = 1
	}
	return &checker{
		hist:        semantics.NewHistory(),
		objects:     map[int]map[string]int64{},
		lastApplyNS: map[int]int64{},
		maxCommits:  maxCommits,
		maxRecent:   maxRecent,
	}
}

// addCommit appends one commit to the history. Out-of-order or duplicate
// sequences (offline replay overlap) are ignored.
func (c *checker) addCommit(ev CommitEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.commits); n > 0 && c.commits[n-1].Seq >= ev.Seq {
		return
	}
	c.commitLocked(ev)
	c.commits = append(c.commits, ev)
	if len(c.commits) > c.maxCommits {
		c.compactLocked()
	}
}

func (c *checker) commitLocked(ev CommitEvent) {
	writes := make(map[semantics.ObjectID]string, len(ev.Tables))
	for _, t := range ev.Tables {
		writes[semantics.ObjectID(t)] = ""
	}
	// The only rejection is a non-increasing xtime, which addCommit and
	// compactLocked both rule out.
	_ = c.hist.Commit(ev.Seq, time.Unix(0, ev.AtNS), writes)
}

// compactLocked drops the oldest half of the retained window and rebuilds
// the semantics history from the remainder; reads whose sync point predates
// the new window classify as unchecked.
func (c *checker) compactLocked() {
	keep := c.commits[len(c.commits)/2:]
	c.hist = semantics.NewHistory()
	c.commits = append([]CommitEvent(nil), keep...)
	for _, ev := range c.commits {
		c.commitLocked(ev)
	}
}

// registerObject declares that a region serves the table from a snapshot
// taken at baseSeq. Re-registration keeps the smallest snapshot (the most
// conservative sync point when several views share a base table).
func (c *checker) registerObject(region int, table string, baseSeq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.objects[region]
	if m == nil {
		m = map[string]int64{}
		c.objects[region] = m
	}
	if have, ok := m[table]; !ok || baseSeq < have {
		m[table] = baseSeq
	}
}

// noteApply records a replication progress event.
func (c *checker) noteApply(ev ApplyEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.AtNS > c.lastApplyNS[ev.Region] {
		c.lastApplyNS[ev.Region] = ev.AtNS
	}
}

// asOfLocked returns the history position exposed at serve time: the
// sequence of the latest retained commit at or before serveNS, and whether
// the retained window still covers that point (false once compaction has
// discarded commits that could precede it).
func (c *checker) asOfLocked(serveNS int64) (seq int64, covered bool) {
	i := sort.Search(len(c.commits), func(i int) bool { return c.commits[i].AtNS > serveNS })
	if i == 0 {
		// No retained commit at or before the serve: either the history is
		// genuinely empty (nothing to be stale against) or compaction
		// discarded it.
		if len(c.commits) > 0 && c.commits[0].Seq > 1 {
			return 0, false
		}
		return 0, true
	}
	return c.commits[i-1].Seq, true
}

// checkQuery classifies one query's read events and returns the per-read
// outcomes plus any violations (already folded into the tally and recent
// list).
func (c *checker) checkQuery(evs []ReadEvent) ([]outcome, []Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]outcome, 0, len(evs))
	var viols []Violation

	// locals collects the guard-approved local serves for the cross-object
	// consistency check below.
	var locals []localServe

	for _, ev := range evs {
		c.tally.ReadsChecked++
		switch {
		case ev.ServedStale || ev.Degraded:
			c.tally.Disclosed++
			outs = append(outs, outcome{class: ClassDisclosed})
			continue
		case ev.Chosen != 0:
			// Remote serves read the master: delivered currency 0.
			c.tally.OK++
			outs = append(outs, outcome{class: ClassOK, slackNS: ev.BoundNS})
			continue
		case ev.BoundNS <= 0:
			c.tally.Unbounded++
			outs = append(outs, outcome{class: ClassUnbounded})
			continue
		}

		out, v := c.checkLocalLocked(ev)
		if out.class == ClassOK {
			asOf, _ := c.asOfLocked(ev.ServeTSNS)
			locals = append(locals, localServe{ev: ev, asOf: asOf, bound: ev.BoundNS})
		}
		switch out.class {
		case ClassOK:
			c.tally.OK++
		case ClassUnchecked:
			c.tally.Unchecked++
		case ClassViolationCurrency:
			c.tally.CurrencyViolations++
			viols = append(viols, v)
			c.keepLocked(v)
		}
		outs = append(outs, out)
	}

	// Θ-consistency across the query's object set: with every copy within
	// its own bound, the maximum pairwise distance cannot exceed the largest
	// declared bound (distance(A,B) ≤ currency of the older copy), so a
	// larger Θ-bound is a real inconsistency the per-read check missed.
	if len(locals) >= 2 {
		if v, bad := c.thetaLocked(locals[0].ev.Query, locals); bad {
			c.tally.ConsistencyViolations++
			viols = append(viols, v)
			c.keepLocked(v)
		}
	}
	return outs, viols
}

// checkLocalLocked audits one guard-approved local serve with a finite
// bound against the formal model.
func (c *checker) checkLocalLocked(ev ReadEvent) (outcome, Violation) {
	tables := c.objects[ev.Region]
	if len(tables) == 0 {
		return outcome{class: ClassUnchecked}, Violation{}
	}
	asOf, covered := c.asOfLocked(ev.ServeTSNS)
	if !covered {
		return outcome{class: ClassUnchecked}, Violation{}
	}
	first := int64(1)
	if len(c.commits) > 0 {
		first = c.commits[0].Seq
	}
	var worst Violation
	delivered := int64(0)
	for table, baseSeq := range tables {
		sync := ev.SyncSeq
		if baseSeq > sync {
			sync = baseSeq
		}
		if sync < first-1 {
			// Commits in (sync, asOf] may have been compacted away; the
			// stale point is unknowable.
			return outcome{class: ClassUnchecked}, Violation{}
		}
		cp := semantics.Copy{ID: semantics.ObjectID(table), SyncXTime: sync}
		stale, ok := c.hist.StaleSince(cp, asOf)
		if !ok {
			continue
		}
		if d := ev.ServeTSNS - stale.At.UnixNano(); d > delivered {
			delivered = d
			worst = Violation{
				Query:            ev.Query,
				Class:            ClassViolationCurrency,
				Region:           ev.Region,
				Object:           table,
				Label:            ev.Label,
				BoundNS:          ev.BoundNS,
				DeliveredNS:      d,
				SyncSeq:          sync,
				StaleSeq:         stale.XTime,
				StaleAtNS:        stale.At.UnixNano(),
				ServeTSNS:        ev.ServeTSNS,
				GuardStalenessNS: ev.StalenessNS,
			}
		}
	}
	if delivered > ev.BoundNS {
		worst.ExcessNS = delivered - ev.BoundNS
		if at := c.lastApplyNS[ev.Region]; at > 0 && at <= ev.ServeTSNS {
			worst.ReplLagNS = ev.ServeTSNS - at
		}
		return outcome{class: ClassViolationCurrency, excessNS: worst.ExcessNS}, worst
	}
	return outcome{class: ClassOK, slackNS: ev.BoundNS - delivered}, Violation{}
}

// localServe is one guard-approved local serve held for the query-level
// Θ-consistency check.
type localServe struct {
	ev    ReadEvent
	asOf  int64
	bound int64
}

// thetaLocked checks the Θ-consistency of a query's guard-approved local
// serves: the object set's consistency bound (maximum pairwise distance per
// the formal model) must not exceed the largest declared currency bound.
//
// Soundness: for any pair of copies, distance(A, B) is at most the delivered
// currency of the older copy, which an OK per-read check bounds by that
// copy's declared bound, itself at most the set's maximum bound — so this
// check cannot trip while the per-read checks pass honestly (violating reads
// are excluded from locals). It is a safety net against checker bugs and
// hand-built event streams, exercised directly by TestThetaConsistencyCheck.
func (c *checker) thetaLocked(query uint64, locals []localServe) (Violation, bool) {
	regions := map[int]bool{}
	var copies []semantics.Copy
	var names []string
	maxBound, asOf, serveNS := int64(0), int64(0), int64(0)
	for _, ls := range locals {
		regions[ls.ev.Region] = true
		if ls.bound > maxBound {
			maxBound = ls.bound
		}
		if ls.asOf > asOf {
			asOf = ls.asOf
		}
		if ls.ev.ServeTSNS > serveNS {
			serveNS = ls.ev.ServeTSNS
		}
		for table, baseSeq := range c.objects[ls.ev.Region] {
			sync := ls.ev.SyncSeq
			if baseSeq > sync {
				sync = baseSeq
			}
			copies = append(copies, semantics.Copy{ID: semantics.ObjectID(table), SyncXTime: sync})
			names = append(names, table)
		}
	}
	if len(regions) < 2 || len(copies) < 2 {
		// Same region ⇒ same agent ⇒ mutually consistent by construction.
		return Violation{}, false
	}
	theta := int64(c.hist.ConsistencyBound(copies, asOf))
	if theta <= maxBound {
		return Violation{}, false
	}
	sort.Strings(names)
	return Violation{
		Query:       query,
		Class:       ClassViolationConsistency,
		Object:      strings.Join(names, ","),
		BoundNS:     maxBound,
		DeliveredNS: theta,
		ExcessNS:    theta - maxBound,
		ServeTSNS:   serveNS,
	}, true
}

func (c *checker) keepLocked(v Violation) {
	c.recent = append(c.recent, v)
	if len(c.recent) > c.maxRecent {
		c.recent = c.recent[len(c.recent)-c.maxRecent:]
	}
}

// summary returns the tally and a copy of the recent violations.
func (c *checker) summary() (Tally, []Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tally, append([]Violation(nil), c.recent...)
}
