// Package audit is the delivered-guarantee auditor: it records the running
// system's C&C history — master commits, replication applies, and every
// guard-approved serve — and checks, via the executable formal model in
// internal/semantics, whether each served result actually kept the currency
// and consistency promise its query declared.
//
// The paper treats a query's C&C constraint as a contract ("at most 10
// seconds stale, Θ-consistent"), but the engine only ever *predicts*
// compliance through heartbeat-based guards; nothing observes what was
// delivered. The auditor closes that loop: the backend/txn layer streams
// commit events (the history H_n), mtcache streams read events (what the
// guard promised and which versions were served), repl agents stream apply
// events (how replication actually advanced), and an incremental checker
// folds reads against the history to classify each serve as OK (with
// slack), a VIOLATION (with excess staleness and full evidence), DISCLOSED
// (the promise was broken but the client was told — degraded serves),
// UNBOUNDED (no finite bound declared), or UNCHECKED (the retained history
// window no longer covers the serve).
//
// Recording uses bounded lock-free rings modeled on obs.QueryRing, and the
// whole path is behind one atomic enabled flag: a disabled auditor costs a
// single atomic load per hook and allocates nothing (asserted by an
// allocation test), so it can stay wired in production builds.
package audit

import "sync/atomic"

// CommitEvent is one committed master transaction: its position in the
// history (the paper's integer transaction timestamp), its commit time on
// the virtual clock, and the base tables it modified. Times are UnixNano
// integers for stable JSON.
type CommitEvent struct {
	Seq    int64    `json:"seq"`
	AtNS   int64    `json:"at_ns"`
	Tables []string `json:"tables,omitempty"`
}

// ReadEvent is one guard decision on a served query: the promise the query
// declared (region, bound), what answered (chosen branch, degraded or
// stale fallbacks), and the versions served (the region agent's applied
// commit sequence plus the replicated heartbeat the guard trusted).
type ReadEvent struct {
	// Query groups the guard decisions of one executed statement; assigned
	// by the auditor when the query's events are recorded.
	Query uint64 `json:"query"`
	// Label is the guarded view's label (evidence naming).
	Label  string `json:"label,omitempty"`
	Region int    `json:"region"`
	// BoundNS is the declared currency bound; 0 means unbounded.
	BoundNS int64 `json:"bound_ns"`
	// Chosen is the branch that answered: 0 local, 1 remote.
	Chosen int `json:"chosen"`
	// Degraded marks a local serve forced by remote unavailability
	// (ActionServeLocal); the violation was disclosed to the client.
	Degraded bool `json:"degraded,omitempty"`
	// ServedStale marks an ActionServeStale rerun: currency checking was
	// disabled wholesale and the result flagged, so staleness is unknown
	// but disclosed.
	ServedStale bool `json:"served_stale,omitempty"`
	// SyncSeq is the region agent's last applied commit sequence at serve
	// time — the xtime of the versions the local branch served.
	SyncSeq int64 `json:"sync_seq"`
	// SyncTSNS is the replicated heartbeat timestamp the guard read
	// (0 if the region never synchronized).
	SyncTSNS int64 `json:"sync_ts_ns"`
	// ServeTSNS is the virtual-clock time of the guard decision.
	ServeTSNS int64 `json:"serve_ts_ns"`
	// StalenessNS is the staleness the guard observed (heartbeat age);
	// valid only when StalenessKnown.
	StalenessNS    int64 `json:"staleness_ns"`
	StalenessKnown bool  `json:"staleness_known"`
}

// ApplyEvent is one replication propagation step that made progress:
// the region's agent applied the log through ThroughSeq at AtNS.
type ApplyEvent struct {
	Region     int   `json:"region"`
	ThroughSeq int64 `json:"through_seq"`
	AtNS       int64 `json:"at_ns"`
}

// stamped wraps a ring entry with its publish sequence so snapshots can be
// returned in recording order (the generic analogue of QueryRecord.Seq).
type stamped[T any] struct {
	seq uint64
	ev  T
}

// ring is a bounded lock-free ring of events, modeled on obs.QueryRing:
// push is one atomic add plus one atomic pointer store, entries are
// immutable after publication, and a snapshot never observes a half-written
// event. Old entries are overwritten (and counted as dropped) when the ring
// wraps. Capacity is rounded up to a power of two.
type ring[T any] struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[stamped[T]]
}

func newRing[T any](size int) *ring[T] {
	n := 16
	for n < size {
		n <<= 1
	}
	return &ring[T]{mask: uint64(n - 1), slots: make([]atomic.Pointer[stamped[T]], n)}
}

// push publishes one event and reports whether it evicted an older one.
func (r *ring[T]) push(ev T) bool {
	seq := r.pos.Add(1)
	r.slots[(seq-1)&r.mask].Store(&stamped[T]{seq: seq, ev: ev})
	return seq > uint64(len(r.slots))
}

// pushed returns how many events were ever recorded.
func (r *ring[T]) pushed() uint64 { return r.pos.Load() }

// dropped returns how many events the ring has overwritten.
func (r *ring[T]) dropped() uint64 {
	if p, c := r.pos.Load(), uint64(len(r.slots)); p > c {
		return p - c
	}
	return 0
}

// snapshot copies the ring's current events in recording order (oldest
// first).
func (r *ring[T]) snapshot() []T {
	entries := make([]*stamped[T], 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	// Sort ascending by publish sequence; the ring layout already has at
	// most one wrap discontinuity, but concurrent pushes can interleave.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].seq > entries[j].seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	out := make([]T, len(entries))
	for i, e := range entries {
		out[i] = e.ev
	}
	return out
}
