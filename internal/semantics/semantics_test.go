package semantics

import (
	"testing"
	"time"
)

var t0 = time.Date(2004, 6, 13, 0, 0, 0, 0, time.UTC)

// threeUpdateHistory: x=a@1(0s), x=b@3(10s), y=c@5(20s), x deleted@7(30s).
func threeUpdateHistory(t *testing.T) *History {
	t.Helper()
	h := NewHistory()
	steps := []struct {
		x      int64
		at     time.Duration
		id     ObjectID
		val    string
		delete bool
	}{
		{1, 0, "x", "a", false},
		{3, 10 * time.Second, "x", "b", false},
		{5, 20 * time.Second, "y", "c", false},
		{7, 30 * time.Second, "x", "", true},
	}
	for _, s := range steps {
		var err error
		if s.delete {
			err = h.Delete(s.x, t0.Add(s.at), s.id)
		} else {
			err = h.Commit(s.x, t0.Add(s.at), map[ObjectID]string{s.id: s.val})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHistoryBasics(t *testing.T) {
	h := threeUpdateHistory(t)
	if h.LastXTime() != 7 {
		t.Fatalf("last xtime = %d", h.LastXTime())
	}
	if err := h.Commit(2, t0, nil); err == nil {
		t.Fatal("non-increasing xtime accepted")
	}
	if err := h.Delete(6, t0, "z"); err == nil {
		t.Fatal("non-increasing delete xtime accepted")
	}
}

func TestReturnAndXTime(t *testing.T) {
	h := threeUpdateHistory(t)
	cases := []struct {
		id      ObjectID
		asOf    int64
		want    string
		present bool
	}{
		{"x", 1, "a", true},
		{"x", 2, "a", true},
		{"x", 3, "b", true},
		{"x", 6, "b", true},
		{"x", 7, "", false}, // deleted
		{"y", 4, "", false}, // not yet inserted
		{"y", 5, "c", true},
	}
	for _, c := range cases {
		got, present := h.Return(c.id, c.asOf)
		if got != c.want || present != c.present {
			t.Errorf("Return(%s, %d) = %q,%v want %q,%v", c.id, c.asOf, got, present, c.want, c.present)
		}
	}
	if x, ok := h.XTimeMaster("x", 6); !ok || x != 3 {
		t.Fatalf("xtime(x,6) = %d,%v", x, ok)
	}
	if _, ok := h.XTimeMaster("y", 4); ok {
		t.Fatal("xtime before first write")
	}
}

func TestStalePointAndCurrency(t *testing.T) {
	h := threeUpdateHistory(t)
	// Copy of x synced at xtime 1 (value a).
	c := Copy{ID: "x", SyncXTime: 1, Value: "a", Present: true}
	// At asOf 2 (before the second update) the copy is not stale.
	if sp := h.StalePoint(c, 2); sp != 2 {
		t.Fatalf("stale point before staleness = %d", sp)
	}
	if cur := h.Currency(c, 2); cur != 0 {
		t.Fatalf("currency of fresh copy = %v", cur)
	}
	// At asOf 7 the copy became stale at xtime 3 (t=10s); the history's
	// latest commit is at t=30s: currency = 20s.
	if sp := h.StalePoint(c, 7); sp != 3 {
		t.Fatalf("stale point = %d", sp)
	}
	if cur := h.Currency(c, 7); cur != 20*time.Second {
		t.Fatalf("currency = %v", cur)
	}
}

func TestSnapshotConsistentAt(t *testing.T) {
	h := threeUpdateHistory(t)
	fresh := Copy{ID: "x", SyncXTime: 3, Value: "b", Present: true}
	if !h.SnapshotConsistentAt(fresh, 3) || !h.SnapshotConsistentAt(fresh, 6) {
		t.Fatal("fresh copy should be consistent at its snapshot")
	}
	if h.SnapshotConsistentAt(fresh, 1) {
		t.Fatal("copy cannot be consistent with an older snapshot holding a different value")
	}
	if h.SnapshotConsistentAt(fresh, 7) {
		t.Fatal("deleted master: stale copy not consistent at 7")
	}
	gone := Copy{ID: "x", SyncXTime: 7, Present: false}
	if !h.SnapshotConsistentAt(gone, 7) {
		t.Fatal("deletion-aware copy consistent at 7")
	}
	// An object never touched: any sync point at or before works.
	untouched := Copy{ID: "z", SyncXTime: 2, Present: false}
	if !h.SnapshotConsistentAt(untouched, 5) {
		t.Fatal("untouched object")
	}
}

func TestSnapshotConsistentSet(t *testing.T) {
	h := threeUpdateHistory(t)
	// Both copies from snapshot 5.
	set := []Copy{
		{ID: "x", SyncXTime: 3, Value: "b", Present: true},
		{ID: "y", SyncXTime: 5, Value: "c", Present: true},
	}
	m, ok := h.SnapshotConsistent(set, 6)
	if !ok || m < 5 {
		t.Fatalf("witness = %d, %v (any snapshot >= 5 is valid: no commit in between)", m, ok)
	}
	// Mixed snapshots that do not line up: x from snapshot 1, y from 5 —
	// at snapshot 5 x's value should be b, at snapshot 1 y should be
	// absent: no witness.
	bad := []Copy{
		{ID: "x", SyncXTime: 1, Value: "a", Present: true},
		{ID: "y", SyncXTime: 5, Value: "c", Present: true},
	}
	if _, ok := h.SnapshotConsistent(bad, 6); ok {
		t.Fatal("inconsistent set accepted")
	}
}

func TestStaleSince(t *testing.T) {
	h := threeUpdateHistory(t)
	c := Copy{ID: "x", SyncXTime: 1, Value: "a", Present: true}
	// Before the second update the copy is not stale: no version, ok=false —
	// distinguishable from "stale since the latest commit", which StalePoint's
	// appendix convention conflates with freshness.
	if _, ok := h.StaleSince(c, 2); ok {
		t.Fatal("fresh copy reported stale")
	}
	v, ok := h.StaleSince(c, 7)
	if !ok || v.XTime != 3 || !v.At.Equal(t0.Add(10*time.Second)) || v.Deleted {
		t.Fatalf("stale since = %+v, %v", v, ok)
	}
	// A deletion is a staleness onset like any other version. The same copy
	// synced at 3 has Currency 0 at asOf 7 (the delete IS the latest commit,
	// so the convention rounds to zero) while StaleSince still surfaces it —
	// the reason the auditor measures delivered staleness from StaleSince.
	c3 := Copy{ID: "x", SyncXTime: 3, Value: "b", Present: true}
	if cur := h.Currency(c3, 7); cur != 0 {
		t.Fatalf("currency at the deleting commit = %v", cur)
	}
	v, ok = h.StaleSince(c3, 7)
	if !ok || v.XTime != 7 || !v.Deleted {
		t.Fatalf("stale-since deletion = %+v, %v", v, ok)
	}
	// An object the history never touched is never stale.
	if _, ok := h.StaleSince(Copy{ID: "z", SyncXTime: 0}, 7); ok {
		t.Fatal("untouched object reported stale")
	}
}

func TestDeletionVersionsInDistance(t *testing.T) {
	h := threeUpdateHistory(t)
	// Extend past the delete so the deletion sits inside the window:
	// w=d@9 (40s).
	if err := h.Commit(9, t0.Add(40*time.Second), map[ObjectID]string{"w": "d"}); err != nil {
		t.Fatal(err)
	}
	// Copy of x synced before the delete vs a copy of w from snapshot 9:
	// distance = currency(x, H_9) = time(9) - time(stale point 7, the delete)
	// = 40s - 30s. Deletions create stale points that count toward Θ.
	a := Copy{ID: "x", SyncXTime: 3, Value: "b", Present: true}
	b := Copy{ID: "w", SyncXTime: 9, Value: "d", Present: true}
	if d := h.Distance(a, b, 9); d != 10*time.Second {
		t.Fatalf("distance through deletion = %v", d)
	}
	if bound := h.ConsistencyBound([]Copy{a, b}, 9); bound != 10*time.Second {
		t.Fatalf("bound through deletion = %v", bound)
	}
}

func TestMixedThetaObjectSets(t *testing.T) {
	h := threeUpdateHistory(t)
	// Copies of three different objects at three different sync points: the
	// bound is the worst pairwise distance, and untouched objects (z) never
	// contribute.
	set := []Copy{
		{ID: "x", SyncXTime: 1, Value: "a", Present: true}, // stale since 3
		{ID: "y", SyncXTime: 5, Value: "c", Present: true}, // fresh at 5
		{ID: "z", SyncXTime: 2, Present: false},            // never written
	}
	// distance(x,y) = currency(x, H_5) = time(5)-time(3) = 10s;
	// distance(x,z) = currency(x, H_2) = 0 (x not yet stale at 2);
	// distance(y,z) = currency(z, H_5) = 0 (z has no versions).
	if bound := h.ConsistencyBound(set, 7); bound != 10*time.Second {
		t.Fatalf("mixed-Θ bound = %v", bound)
	}
	// Tightening x to its post-update snapshot collapses the bound to 0 even
	// though the sync points still differ — Θ is about distance, not equality.
	set[0] = Copy{ID: "x", SyncXTime: 3, Value: "b", Present: true}
	if bound := h.ConsistencyBound(set, 6); bound != 0 {
		t.Fatalf("aligned mixed set bound = %v", bound)
	}
}

func TestDistanceAndConsistencyBound(t *testing.T) {
	h := threeUpdateHistory(t)
	a := Copy{ID: "x", SyncXTime: 1, Value: "a", Present: true} // stale since xtime 3 (t=10s)
	b := Copy{ID: "y", SyncXTime: 5, Value: "c", Present: true} // current at 5 (t=20s)
	// distance(a, b) = currency(a, H_5) = time(5) - time(3) = 10s.
	if d := h.Distance(a, b, 7); d != 10*time.Second {
		t.Fatalf("distance = %v", d)
	}
	// Symmetric argument order.
	if d := h.Distance(b, a, 7); d != 10*time.Second {
		t.Fatalf("distance flipped = %v", d)
	}
	// A Θ-consistent set with bound 0 is snapshot consistent w.r.t. the
	// newest member's snapshot (the appendix's observation).
	consistent := []Copy{
		{ID: "x", SyncXTime: 3, Value: "b", Present: true},
		{ID: "y", SyncXTime: 5, Value: "c", Present: true},
	}
	if bound := h.ConsistencyBound(consistent, 6); bound != 0 {
		t.Fatalf("bound = %v", bound)
	}
	if _, ok := h.SnapshotConsistent(consistent, 6); !ok {
		t.Fatal("bound-0 set must be snapshot consistent")
	}
	inconsistent := []Copy{a, b}
	if bound := h.ConsistencyBound(inconsistent, 7); bound != 10*time.Second {
		t.Fatalf("bound = %v", bound)
	}
}
