// Package semantics is an executable rendering of the paper's formal model
// (Appendix 8): master objects and copies, transaction timestamps
// (xtime), stale points, currency, the distance between objects, and
// Θ-consistency / snapshot consistency of object sets.
//
// It exists to *check* the running system against the paper's definitions:
// tests replay a master history, compute each cached object's formal
// currency and the cache's consistency bound, and assert that replication
// and guards deliver what the definitions promise. The model is
// deliberately independent of the engine packages — it reimplements the
// semantics from the paper's text, so agreement between the two is
// evidence, not tautology.
package semantics

import (
	"fmt"
	"sort"
	"time"
)

// ObjectID identifies a master object (the model's granularity is abstract;
// tests typically use one object per row).
type ObjectID string

// Version is one committed value of an object.
type Version struct {
	// XTime is the transaction timestamp of the update that produced this
	// version (Appendix 8.1: integer ids assigned in commit order).
	XTime int64
	// At is the commit wall-clock time of that transaction.
	At time.Time
	// Value is the object's value in this version (opaque).
	Value string
	// Deleted marks a deletion version.
	Deleted bool
}

// History is the master history H_n: for each object, its committed
// versions in xtime order, plus the global commit sequence.
type History struct {
	versions map[ObjectID][]Version
	commits  []int64 // xtime of every committed transaction, ascending
	times    map[int64]time.Time
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{versions: map[ObjectID][]Version{}, times: map[int64]time.Time{}}
}

// Commit appends transaction xtime at wall time at, modifying the given
// objects to the given values. XTimes must be strictly increasing.
func (h *History) Commit(xtime int64, at time.Time, writes map[ObjectID]string) error {
	if n := len(h.commits); n > 0 && h.commits[n-1] >= xtime {
		return fmt.Errorf("semantics: xtime %d not increasing", xtime)
	}
	h.commits = append(h.commits, xtime)
	h.times[xtime] = at
	for id, val := range writes {
		h.versions[id] = append(h.versions[id], Version{XTime: xtime, At: at, Value: val})
	}
	return nil
}

// Delete appends a deletion of the object.
func (h *History) Delete(xtime int64, at time.Time, id ObjectID) error {
	if n := len(h.commits); n > 0 && h.commits[n-1] >= xtime {
		return fmt.Errorf("semantics: xtime %d not increasing", xtime)
	}
	h.commits = append(h.commits, xtime)
	h.times[xtime] = at
	h.versions[id] = append(h.versions[id], Version{XTime: xtime, At: at, Deleted: true})
	return nil
}

// LastXTime returns the timestamp of the latest committed transaction
// (0 if none) — the model's T_n.
func (h *History) LastXTime() int64 {
	if len(h.commits) == 0 {
		return 0
	}
	return h.commits[len(h.commits)-1]
}

// XTimeMaster returns xtime(O, H_n) for the master object: the timestamp of
// the latest transaction in the history (restricted to xtimes <= asOf) that
// modified O; ok=false if O was never modified by then.
func (h *History) XTimeMaster(id ObjectID, asOf int64) (int64, bool) {
	vs := h.versions[id]
	var out int64
	found := false
	for _, v := range vs {
		if v.XTime <= asOf {
			out = v.XTime
			found = true
		}
	}
	return out, found
}

// Return gives return(O, s) for the master state at snapshot asOf: the
// object's value, and ok=false if absent (never inserted, or deleted).
func (h *History) Return(id ObjectID, asOf int64) (string, bool) {
	vs := h.versions[id]
	val, ok := "", false
	for _, v := range vs {
		if v.XTime > asOf {
			break
		}
		if v.Deleted {
			val, ok = "", false
		} else {
			val, ok = v.Value, true
		}
	}
	return val, ok
}

// Copy is a cached copy C of a master object: the value it holds and the
// xtime it was synchronized at (copied from the master object by the
// copy-transaction, Appendix 8.1).
type Copy struct {
	ID ObjectID
	// SyncXTime is xtime(C, H_n): the master version the copy reflects.
	SyncXTime int64
	Value     string
	// Present is false when the copy (correctly) reflects a deleted or
	// never-inserted object.
	Present bool
}

// StalePoint computes stale(C, H_n): the xtime of the first transaction
// that modified master(C) after the copy's sync point; if the copy is not
// stale it returns the last committed xtime (per the appendix convention).
func (h *History) StalePoint(c Copy, asOf int64) int64 {
	for _, v := range h.versions[c.ID] {
		if v.XTime > c.SyncXTime && v.XTime <= asOf {
			return v.XTime
		}
	}
	return asOf
}

// StaleSince reports whether copy C is stale as of asOf and, if so, returns
// the version that first made it stale — the stale point as an explicit
// version rather than the appendix's "last commit" convention, so callers
// can distinguish "not stale" from "stale since the most recent commit" and
// read the staleness onset time directly.
func (h *History) StaleSince(c Copy, asOf int64) (Version, bool) {
	for _, v := range h.versions[c.ID] {
		if v.XTime > c.SyncXTime && v.XTime <= asOf {
			return v, true
		}
	}
	return Version{}, false
}

// Currency computes currency(C, H_n) = time(T_n) - time(stale(C, H_n)) —
// how long the copy has been stale, in wall time, as of the transaction
// with timestamp asOf. A copy that is not stale has currency 0.
func (h *History) Currency(c Copy, asOf int64) time.Duration {
	sp := h.StalePoint(c, asOf)
	if sp >= asOf {
		return 0
	}
	return h.timeOf(asOf).Sub(h.timeOf(sp))
}

func (h *History) timeOf(xtime int64) time.Time {
	if t, ok := h.times[xtime]; ok {
		return t
	}
	// asOf may fall between commits; use the latest commit at or before it.
	i := sort.Search(len(h.commits), func(i int) bool { return h.commits[i] > xtime })
	if i == 0 {
		return time.Time{}
	}
	return h.times[h.commits[i-1]]
}

// SnapshotConsistentAt reports whether copy C is snapshot consistent with
// respect to snapshot asOf (Appendix 8.5): its value equals the master's
// value at asOf and its sync point equals the master object's xtime at
// asOf.
func (h *History) SnapshotConsistentAt(c Copy, asOf int64) bool {
	wantVal, present := h.Return(c.ID, asOf)
	if present != c.Present {
		return false
	}
	if present && wantVal != c.Value {
		return false
	}
	wantX, modified := h.XTimeMaster(c.ID, asOf)
	if !modified {
		return c.SyncXTime <= asOf // untouched object: any earlier sync point agrees
	}
	return c.SyncXTime >= wantX
}

// SnapshotConsistent reports whether the set of copies is snapshot
// consistent with respect to SOME snapshot H_m with m <= asOf, returning
// the witness snapshot.
func (h *History) SnapshotConsistent(copies []Copy, asOf int64) (int64, bool) {
	// Candidate snapshots: each copy's sync point (plus asOf itself).
	cands := map[int64]bool{asOf: true}
	for _, c := range copies {
		cands[c.SyncXTime] = true
	}
	var sorted []int64
	for m := range cands {
		if m <= asOf {
			sorted = append(sorted, m)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	for _, m := range sorted {
		all := true
		for _, c := range copies {
			if !h.SnapshotConsistentAt(c, m) {
				all = false
				break
			}
		}
		if all {
			return m, true
		}
	}
	return 0, false
}

// Distance computes distance(A, B, H_n) per Appendix 8.5: with xtime(A) <=
// xtime(B) = T_m, the distance is currency(A, H_m) — how far A is from
// being snapshot consistent with B's snapshot.
func (h *History) Distance(a, b Copy, asOf int64) time.Duration {
	if a.SyncXTime > b.SyncXTime {
		a, b = b, a
	}
	m := b.SyncXTime
	if m > asOf {
		m = asOf
	}
	return h.Currency(a, m)
}

// ConsistencyBound computes the Θ-consistency bound of a set of copies:
// the maximum pairwise distance (Appendix 8.5). A bound of 0 means the set
// is snapshot consistent with respect to the newest member's snapshot.
func (h *History) ConsistencyBound(copies []Copy, asOf int64) time.Duration {
	var max time.Duration
	for i := range copies {
		for j := i + 1; j < len(copies); j++ {
			if d := h.Distance(copies[i], copies[j], asOf); d > max {
				max = d
			}
		}
	}
	return max
}
