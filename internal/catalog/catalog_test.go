package catalog

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/sqltypes"
)

func customerDef() *Table {
	return &Table{
		Name: "Customer",
		Columns: []Column{
			{Name: "c_custkey", Type: sqltypes.KindInt, NotNull: true},
			{Name: "c_name", Type: sqltypes.KindString},
			{Name: "c_nationkey", Type: sqltypes.KindInt},
			{Name: "c_acctbal", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"c_custkey"},
	}
}

func TestAddTableImplicitClusteredIndex(t *testing.T) {
	c := New()
	if err := c.AddTable(customerDef()); err != nil {
		t.Fatal(err)
	}
	tbl := c.Table("Customer")
	if tbl == nil {
		t.Fatal("table not found")
	}
	if len(tbl.Indexes) != 1 || !tbl.Indexes[0].Clustered {
		t.Fatalf("expected implicit clustered index, got %+v", tbl.Indexes)
	}
	if tbl.Indexes[0].Columns[0] != "c_custkey" {
		t.Fatalf("clustered key = %v", tbl.Indexes[0].Columns)
	}
	if tbl.Stats == nil {
		t.Fatal("stats not initialized")
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	cases := []struct {
		name string
		tbl  *Table
		want string
	}{
		{"empty name", &Table{}, "empty name"},
		{"no columns", &Table{Name: "t"}, "no columns"},
		{"no pk", &Table{Name: "t", Columns: []Column{{Name: "a"}}}, "no primary key"},
		{"dup column", &Table{Name: "t", Columns: []Column{{Name: "a"}, {Name: "a"}}, PrimaryKey: []string{"a"}}, "duplicate column"},
		{"bad pk", &Table{Name: "t", Columns: []Column{{Name: "a"}}, PrimaryKey: []string{"b"}}, "not defined"},
	}
	for _, tc := range cases {
		err := c.AddTable(tc.tbl)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
	if err := c.AddTable(customerDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(customerDef()); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := customerDef()
	if tbl.ColumnIndex("c_name") != 1 {
		t.Error("ColumnIndex")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex missing")
	}
	if tbl.Column("c_acctbal") == nil || tbl.Column("nope") != nil {
		t.Error("Column")
	}
}

func TestAddIndexAndIndexOn(t *testing.T) {
	c := New()
	if err := c.AddTable(customerDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "ix_acctbal", Table: "Customer", Columns: []string{"c_acctbal"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "ix_acctbal", Table: "Customer", Columns: []string{"c_acctbal"}}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := c.AddIndex(&Index{Name: "ix_bad", Table: "Customer", Columns: []string{"nope"}}); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if err := c.AddIndex(&Index{Name: "ix", Table: "Nope", Columns: []string{"x"}}); err == nil {
		t.Fatal("index on missing table accepted")
	}
	tbl := c.Table("Customer")
	if idx := tbl.IndexOn("c_acctbal"); idx == nil || idx.Name != "ix_acctbal" {
		t.Fatalf("IndexOn(c_acctbal) = %v", idx)
	}
	if idx := tbl.IndexOn("c_custkey"); idx == nil || !idx.Clustered {
		t.Fatalf("IndexOn(pk) should find clustered index, got %v", idx)
	}
	if tbl.IndexOn("c_name") != nil {
		t.Fatal("IndexOn for unindexed column should be nil")
	}
}

func TestRegions(t *testing.T) {
	c := New()
	if err := c.AddRegion(&Region{ID: MasterRegionID}); err == nil {
		t.Fatal("master region id accepted")
	}
	r := &Region{ID: 1, Name: "CR1", UpdateInterval: 15 * time.Second, UpdateDelay: 5 * time.Second}
	if err := c.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRegion(&Region{ID: 1}); err == nil {
		t.Fatal("duplicate region accepted")
	}
	got := c.Region(1)
	if got.HeartbeatInterval != 2*time.Second {
		t.Fatalf("default heartbeat = %v", got.HeartbeatInterval)
	}
	if got.MinCurrency() != 5*time.Second {
		t.Fatalf("MinCurrency = %v", got.MinCurrency())
	}
	if got.MaxCurrency() != 20*time.Second {
		t.Fatalf("MaxCurrency = %v", got.MaxCurrency())
	}
	if len(c.Regions()) != 1 {
		t.Fatal("Regions()")
	}
}

func TestViews(t *testing.T) {
	c := New()
	if err := c.AddTable(customerDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRegion(&Region{ID: 1, Name: "CR1"}); err != nil {
		t.Fatal(err)
	}
	v := &View{
		Name:      "cust_prj",
		BaseTable: "Customer",
		Columns:   []string{"c_custkey", "c_name", "c_nationkey", "c_acctbal"},
		RegionID:  1,
	}
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(v); err == nil {
		t.Fatal("duplicate view accepted")
	}
	bad := []*View{
		{Name: "v1", BaseTable: "Nope", Columns: []string{"x"}, RegionID: 1},
		{Name: "v2", BaseTable: "Customer", Columns: []string{"nope"}, RegionID: 1},
		{Name: "v3", BaseTable: "Customer", Columns: []string{"c_name"}, RegionID: 1}, // misses PK
		{Name: "v4", BaseTable: "Customer", Columns: []string{"c_custkey"}, RegionID: 99},
		{Name: "v5", BaseTable: "Customer", Columns: []string{"c_custkey"}, RegionID: 1,
			Preds: []SimplePred{{Column: "nope", Op: OpGT, Value: sqltypes.NewInt(0)}}},
	}
	for _, b := range bad {
		if err := c.AddView(b); err == nil {
			t.Errorf("view %s accepted, want error", b.Name)
		}
	}
	if c.View("cust_prj") == nil {
		t.Fatal("View lookup")
	}
	if len(c.ViewsOf("Customer")) != 1 || len(c.ViewsOf("Orders")) != 0 {
		t.Fatal("ViewsOf")
	}
	if v.ColumnIndex("c_name") != 1 || v.ColumnIndex("zz") != -1 {
		t.Fatal("View.ColumnIndex")
	}
}

func TestCompareOpString(t *testing.T) {
	ops := map[CompareOp]string{OpEQ: "=", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v", op)
		}
	}
	p := SimplePred{Column: "c_acctbal", Op: OpGE, Value: sqltypes.NewFloat(100)}
	if p.String() != "c_acctbal >= 100" {
		t.Fatalf("pred string = %q", p.String())
	}
}

func TestClone(t *testing.T) {
	c := New()
	if err := c.AddTable(customerDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRegion(&Region{ID: 1, Name: "CR1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(&View{Name: "v", BaseTable: "Customer", Columns: []string{"c_custkey"}, RegionID: 1}); err != nil {
		t.Fatal(err)
	}
	c.Table("Customer").Stats.Set(150000, 80, map[string]*ColumnStats{
		"c_custkey": {NDV: 150000, Min: sqltypes.NewInt(1), Max: sqltypes.NewInt(150000)},
	})
	cl := c.Clone()
	if cl.Table("Customer") == c.Table("Customer") {
		t.Fatal("clone shares table pointers")
	}
	if cl.Table("Customer").Stats.Rows() != 150000 {
		t.Fatal("clone lost stats")
	}
	// Mutating the clone's stats must not affect the original.
	cl.Table("Customer").Stats.Set(5, 10, nil)
	if c.Table("Customer").Stats.Rows() != 150000 {
		t.Fatal("clone aliases stats")
	}
	if cl.View("v") == nil || cl.Region(1) == nil {
		t.Fatal("clone misses views/regions")
	}
}

func TestStatsSelectivity(t *testing.T) {
	s := NewTableStats()
	if s.Rows() != 1 {
		t.Fatal("empty stats Rows should be 1")
	}
	if got := s.SelectivityEq("x"); got != defaultEqSelectivity {
		t.Fatalf("default eq sel = %v", got)
	}
	if got := s.SelectivityRange("x", sqltypes.Null, sqltypes.Null); got != defaultRangeSelectivity {
		t.Fatalf("default range sel = %v", got)
	}
	s.Set(1000, 50, map[string]*ColumnStats{
		"a": {NDV: 100, Min: sqltypes.NewFloat(0), Max: sqltypes.NewFloat(100)},
	})
	if got := s.SelectivityEq("a"); got != 0.01 {
		t.Fatalf("eq sel = %v", got)
	}
	got := s.SelectivityRange("a", sqltypes.NewFloat(0), sqltypes.NewFloat(50))
	if got < 0.45 || got > 0.55 {
		t.Fatalf("range sel [0,50] = %v, want ~0.5", got)
	}
	if got := s.SelectivityRange("a", sqltypes.NewFloat(200), sqltypes.NewFloat(300)); got != 0 {
		t.Fatalf("out-of-range sel = %v", got)
	}
	if got := s.SelectivityRange("a", sqltypes.NewFloat(60), sqltypes.NewFloat(40)); got != 0 {
		t.Fatalf("inverted range sel = %v", got)
	}
	if got := s.SelectivityRange("a", sqltypes.Null, sqltypes.Null); got != 1 {
		t.Fatalf("unbounded range sel = %v", got)
	}
}

func TestBuildStats(t *testing.T) {
	tbl := customerDef()
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("ann"), sqltypes.NewInt(1), sqltypes.NewFloat(10)},
		{sqltypes.NewInt(2), sqltypes.NewString("bob"), sqltypes.NewInt(1), sqltypes.NewFloat(90)},
		{sqltypes.NewInt(3), sqltypes.Null, sqltypes.NewInt(2), sqltypes.NewFloat(50)},
	}
	stats := BuildStats(tbl, func(yield func(sqltypes.Row)) {
		for _, r := range rows {
			yield(r)
		}
	})
	if stats.Rows() != 3 {
		t.Fatalf("rows = %d", stats.Rows())
	}
	cs := stats.Column("c_custkey")
	if cs.NDV != 3 || cs.Min.Int() != 1 || cs.Max.Int() != 3 {
		t.Fatalf("c_custkey stats = %+v", cs)
	}
	if stats.Column("c_name").NullCount != 1 {
		t.Fatal("null count")
	}
	if stats.Column("c_nationkey").NDV != 2 {
		t.Fatal("ndv")
	}
	if len(stats.Column("c_acctbal").Histogram) == 0 {
		t.Fatal("histogram missing")
	}
	// Histogram-based selectivity: acctbal in [0,50] covers 2 of 3 rows-ish.
	sel := stats.SelectivityRange("c_acctbal", sqltypes.NewFloat(0), sqltypes.NewFloat(55))
	if sel <= 0 || sel > 1 {
		t.Fatalf("sel = %v", sel)
	}
}
