package catalog

import (
	"sync"

	"relaxedcc/internal/sqltypes"
)

// histogramBuckets is the number of equi-width buckets kept per numeric
// column.
const histogramBuckets = 32

// ColumnStats summarizes one column for cardinality estimation.
type ColumnStats struct {
	NDV       int64 // number of distinct values
	NullCount int64
	Min, Max  sqltypes.Value // numeric columns only (Null otherwise)
	// Histogram is an equi-width histogram over [Min, Max] for numeric
	// columns; Histogram[i] counts rows in the i-th bucket.
	Histogram []int64
}

// TableStats summarizes a table for the optimizer. At the cache these
// reflect the *back-end* data (the shadow-catalog trick from Section 3), so
// they are set by copying, not derived from local storage.
type TableStats struct {
	mu       sync.RWMutex
	RowCount int64
	Columns  map[string]*ColumnStats
	// AvgRowBytes estimates the serialized width of a row; used to cost
	// shipping rows over the cache/back-end link.
	AvgRowBytes int64
}

// NewTableStats returns empty statistics.
func NewTableStats() *TableStats {
	return &TableStats{Columns: map[string]*ColumnStats{}, AvgRowBytes: 64}
}

func (s *TableStats) clone() *TableStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := &TableStats{RowCount: s.RowCount, AvgRowBytes: s.AvgRowBytes, Columns: map[string]*ColumnStats{}}
	for name, cs := range s.Columns {
		cp := *cs
		cp.Histogram = append([]int64(nil), cs.Histogram...)
		out.Columns[name] = &cp
	}
	return out
}

// Set replaces the statistics wholesale (thread-safe).
func (s *TableStats) Set(rowCount, avgRowBytes int64, cols map[string]*ColumnStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.RowCount = rowCount
	if avgRowBytes > 0 {
		s.AvgRowBytes = avgRowBytes
	}
	s.Columns = cols
}

// Rows returns the estimated row count (at least 1, so selectivity math
// never divides by zero).
func (s *TableStats) Rows() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.RowCount < 1 {
		return 1
	}
	return s.RowCount
}

// RowBytes returns the estimated average row width in bytes.
func (s *TableStats) RowBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.AvgRowBytes < 1 {
		return 64
	}
	return s.AvgRowBytes
}

// Column returns stats for the named column, or nil.
func (s *TableStats) Column(name string) *ColumnStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Columns[name]
}

// defaultEqSelectivity is used when no column statistics exist.
const defaultEqSelectivity = 0.01

// defaultRangeSelectivity is used when no histogram applies.
const defaultRangeSelectivity = 0.3

// SelectivityEq estimates the fraction of rows with column = some value.
func (s *TableStats) SelectivityEq(col string) float64 {
	cs := s.Column(col)
	if cs == nil || cs.NDV <= 0 {
		return defaultEqSelectivity
	}
	return 1.0 / float64(cs.NDV)
}

// SelectivityRange estimates the fraction of rows with lo <= col <= hi.
// Either bound may be Null meaning unbounded on that side.
func (s *TableStats) SelectivityRange(col string, lo, hi sqltypes.Value) float64 {
	cs := s.Column(col)
	if cs == nil || cs.Min.IsNull() || cs.Max.IsNull() || !cs.Min.IsNumeric() {
		return defaultRangeSelectivity
	}
	minV, maxV := cs.Min.Float(), cs.Max.Float()
	if maxV <= minV {
		return 1.0
	}
	loF, hiF := minV, maxV
	if !lo.IsNull() && lo.IsNumeric() {
		loF = lo.Float()
	}
	if !hi.IsNull() && hi.IsNumeric() {
		hiF = hi.Float()
	}
	if hiF < loF {
		return 0
	}
	if len(cs.Histogram) > 0 {
		return histogramFraction(cs.Histogram, minV, maxV, loF, hiF)
	}
	frac := (min64(hiF, maxV) - max64(loF, minV)) / (maxV - minV)
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

func histogramFraction(h []int64, minV, maxV, lo, hi float64) float64 {
	width := (maxV - minV) / float64(len(h))
	if width <= 0 {
		return 1.0
	}
	var total, in float64
	for i, c := range h {
		total += float64(c)
		bLo := minV + float64(i)*width
		bHi := bLo + width
		overlap := min64(hi, bHi) - max64(lo, bLo)
		if overlap <= 0 {
			continue
		}
		in += float64(c) * overlap / width
	}
	if total == 0 {
		return defaultRangeSelectivity
	}
	frac := in / total
	if frac > 1 {
		return 1
	}
	return frac
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BuildStats computes statistics by scanning rows (used by ANALYZE-style
// refresh on the back end). The scan callback must invoke yield once per row.
func BuildStats(t *Table, scan func(yield func(sqltypes.Row))) *TableStats {
	type colAgg struct {
		distinct map[string]struct{}
		nulls    int64
		min, max sqltypes.Value
		numeric  []float64
	}
	aggs := make([]*colAgg, len(t.Columns))
	for i := range aggs {
		aggs[i] = &colAgg{distinct: map[string]struct{}{}, min: sqltypes.Null, max: sqltypes.Null}
	}
	var rows int64
	var bytes int64
	scan(func(r sqltypes.Row) {
		rows++
		for i, v := range r {
			if i >= len(aggs) {
				break
			}
			a := aggs[i]
			if v.IsNull() {
				a.nulls++
				continue
			}
			a.distinct[sqltypes.Key(v)] = struct{}{}
			if a.min.IsNull() || v.Compare(a.min) < 0 {
				a.min = v
			}
			if a.max.IsNull() || v.Compare(a.max) > 0 {
				a.max = v
			}
			if v.IsNumeric() {
				a.numeric = append(a.numeric, v.Float())
			}
			bytes += estimateValueBytes(v)
		}
	})
	stats := NewTableStats()
	stats.RowCount = rows
	if rows > 0 {
		stats.AvgRowBytes = bytes / rows
		if stats.AvgRowBytes < 8 {
			stats.AvgRowBytes = 8
		}
	}
	for i, a := range aggs {
		cs := &ColumnStats{
			NDV:       int64(len(a.distinct)),
			NullCount: a.nulls,
			Min:       a.min,
			Max:       a.max,
		}
		if len(a.numeric) > 0 && !a.min.IsNull() && a.min.IsNumeric() && a.max.IsNumeric() {
			cs.Histogram = buildHistogram(a.numeric, a.min.Float(), a.max.Float())
		}
		stats.Columns[t.Columns[i].Name] = cs
	}
	return stats
}

func buildHistogram(vals []float64, minV, maxV float64) []int64 {
	h := make([]int64, histogramBuckets)
	span := maxV - minV
	if span <= 0 {
		h[0] = int64(len(vals))
		return h
	}
	for _, v := range vals {
		b := int((v - minV) / span * float64(histogramBuckets))
		if b >= histogramBuckets {
			b = histogramBuckets - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

func estimateValueBytes(v sqltypes.Value) int64 {
	switch v.Kind() {
	case sqltypes.KindString:
		return int64(len(v.Str())) + 2
	case sqltypes.KindBool:
		return 1
	default:
		return 8
	}
}
