// Package catalog holds the metadata both servers operate on: table and
// index definitions, materialized-view definitions at the cache, currency
// regions, and optimizer statistics.
//
// Following the paper (Section 3), the cache DBMS keeps a *shadow* catalog:
// the same tables as the back end, but with statistics reflecting the
// back-end data rather than the (empty) shadow tables. Catalog supports this
// with Clone, and with statistics that are set explicitly rather than derived
// from local row counts.
//
// Currency-region metadata follows Section 3.1: each cached view carries the
// id of its region (cid), and each region records update_interval (how often
// the distribution agent propagates) and update_delay (the propagation
// delay) — both used only for cost estimation.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Column describes one table or view column.
type Column struct {
	Name    string
	Type    sqltypes.Kind
	NotNull bool
}

// Index describes a clustered or secondary index.
type Index struct {
	Name      string
	Table     string
	Columns   []string // key columns, in order
	Unique    bool
	Clustered bool
}

// Table describes a base table (or the shadow of one) plus its indexes.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []string // column names; also the clustered index key
	Indexes    []*Index // includes the implicit clustered PK index
	Stats      *TableStats
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the definition of the named column, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// PKOrdinals returns the column ordinals of the primary key.
func (t *Table) PKOrdinals() []int {
	out := make([]int, len(t.PrimaryKey))
	for i, name := range t.PrimaryKey {
		out[i] = t.ColumnIndex(name)
	}
	return out
}

// IndexOn returns an index whose leading key columns match cols exactly (in
// order), preferring the clustered index, or nil.
func (t *Table) IndexOn(cols ...string) *Index {
	var found *Index
	for _, idx := range t.Indexes {
		if len(idx.Columns) < len(cols) {
			continue
		}
		ok := true
		for i, c := range cols {
			if idx.Columns[i] != c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if idx.Clustered {
			return idx
		}
		if found == nil {
			found = idx
		}
	}
	return found
}

// Clone returns a deep copy of the table definition.
func (t *Table) Clone() *Table { return t.clone() }

// clone returns a deep copy of the table definition.
func (t *Table) clone() *Table {
	cp := &Table{
		Name:       t.Name,
		Columns:    append([]Column(nil), t.Columns...),
		PrimaryKey: append([]string(nil), t.PrimaryKey...),
	}
	for _, idx := range t.Indexes {
		ic := *idx
		ic.Columns = append([]string(nil), idx.Columns...)
		cp.Indexes = append(cp.Indexes, &ic)
	}
	if t.Stats != nil {
		cp.Stats = t.Stats.clone()
	}
	return cp
}

// CompareOp is a comparison operator in a simple view predicate.
type CompareOp int

// Comparison operators for simple predicates.
const (
	OpEQ CompareOp = iota
	OpLT
	OpLE
	OpGT
	OpGE
)

// String renders the operator in SQL.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// SimplePred is a predicate of the form column <op> literal. Materialized
// views at the cache are selections (conjunctions of SimplePreds) and
// projections of a single back-end table, as in the paper's prototype.
type SimplePred struct {
	Column string
	Op     CompareOp
	Value  sqltypes.Value
}

// String renders the predicate in SQL.
func (p SimplePred) String() string {
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Value)
}

// View describes a materialized view cached at the mid tier: a
// selection/projection of one back-end table, maintained by transactional
// replication, belonging to a currency region.
type View struct {
	Name      string
	BaseTable string
	Columns   []string     // projected base-table columns; must include the PK
	Preds     []SimplePred // conjunctive selection over base columns; empty = whole table
	RegionID  int          // cid: the currency region maintaining this view
}

// clone returns a deep copy of the view definition.
func (v *View) clone() *View {
	cp := *v
	cp.Columns = append([]string(nil), v.Columns...)
	cp.Preds = append([]SimplePred(nil), v.Preds...)
	return &cp
}

// ColumnIndex returns the ordinal of name within the view's projection, or -1.
func (v *View) ColumnIndex(name string) int {
	for i, c := range v.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// MasterRegionID is the reserved region id of the back-end (master)
// database itself: always current and internally consistent.
const MasterRegionID = 0

// Region is a currency region (Section 3.1): the set of cached views
// maintained by one distribution agent, mutually consistent at all times.
type Region struct {
	ID                int
	Name              string
	UpdateInterval    time.Duration // f: how often the agent propagates
	UpdateDelay       time.Duration // d: propagation delay to the front end
	HeartbeatInterval time.Duration // how often the region's heart beats
}

// MinCurrency returns the minimum staleness bound the region can ever
// guarantee — its propagation delay. A query bound below this can never be
// satisfied from the region (the compile-time pruning optimization in
// Section 3.2.2).
func (r *Region) MinCurrency() time.Duration { return r.UpdateDelay }

// MaxCurrency returns the worst-case staleness for the region under periodic
// propagation: delay + interval (Figure 3.2).
func (r *Region) MaxCurrency() time.Duration { return r.UpdateDelay + r.UpdateInterval }

// Catalog is a thread-safe collection of tables, views and regions.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	views   map[string]*View
	regions map[int]*Region
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  map[string]*Table{},
		views:   map[string]*View{},
		regions: map[int]*Region{},
	}
}

// AddTable registers a table. The clustered PK index is added implicitly if
// absent. It returns an error on duplicates or malformed definitions.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	if len(t.PrimaryKey) == 0 {
		return fmt.Errorf("catalog: table %s has no primary key", t.Name)
	}
	seen := map[string]bool{}
	for _, col := range t.Columns {
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %s: duplicate column %s", t.Name, col.Name)
		}
		seen[col.Name] = true
	}
	for _, pk := range t.PrimaryKey {
		if !seen[pk] {
			return fmt.Errorf("catalog: table %s: primary key column %s not defined", t.Name, pk)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	hasClustered := false
	for _, idx := range t.Indexes {
		if idx.Clustered {
			hasClustered = true
		}
		idx.Table = t.Name
	}
	if !hasClustered {
		t.Indexes = append([]*Index{{
			Name:      "pk_" + t.Name,
			Table:     t.Name,
			Columns:   append([]string(nil), t.PrimaryKey...),
			Unique:    true,
			Clustered: true,
		}}, t.Indexes...)
	}
	if t.Stats == nil {
		t.Stats = NewTableStats()
	}
	c.tables[t.Name] = t
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers a secondary index on an existing table.
func (c *Catalog) AddIndex(idx *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[idx.Table]
	if !ok {
		return fmt.Errorf("catalog: index %s: no table %s", idx.Name, idx.Table)
	}
	for _, existing := range t.Indexes {
		if existing.Name == idx.Name {
			return fmt.Errorf("catalog: index %s already exists on %s", idx.Name, idx.Table)
		}
	}
	for _, col := range idx.Columns {
		if t.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: index %s: no column %s on %s", idx.Name, col, idx.Table)
		}
	}
	t.Indexes = append(t.Indexes, idx)
	return nil
}

// AddView registers a materialized-view definition at the cache.
func (c *Catalog) AddView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[v.Name]; ok {
		return fmt.Errorf("catalog: view %s already exists", v.Name)
	}
	t, ok := c.tables[v.BaseTable]
	if !ok {
		return fmt.Errorf("catalog: view %s: no base table %s", v.Name, v.BaseTable)
	}
	for _, col := range v.Columns {
		if t.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: view %s: no column %s on %s", v.Name, col, v.BaseTable)
		}
	}
	for _, pk := range t.PrimaryKey {
		if v.ColumnIndex(pk) < 0 {
			return fmt.Errorf("catalog: view %s must project primary key column %s", v.Name, pk)
		}
	}
	for _, p := range v.Preds {
		if t.ColumnIndex(p.Column) < 0 {
			return fmt.Errorf("catalog: view %s: predicate column %s not on %s", v.Name, p.Column, v.BaseTable)
		}
	}
	if _, ok := c.regions[v.RegionID]; !ok && v.RegionID != MasterRegionID {
		return fmt.Errorf("catalog: view %s: unknown currency region %d", v.Name, v.RegionID)
	}
	c.views[v.Name] = v
	return nil
}

// View returns the named view, or nil.
func (c *Catalog) View(name string) *View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[name]
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ViewsOf returns the views over the given base table, sorted by name.
func (c *Catalog) ViewsOf(baseTable string) []*View {
	var out []*View
	for _, v := range c.Views() {
		if v.BaseTable == baseTable {
			out = append(out, v)
		}
	}
	return out
}

// AddRegion registers a currency region.
func (c *Catalog) AddRegion(r *Region) error {
	if r.ID == MasterRegionID {
		return fmt.Errorf("catalog: region id %d is reserved for the master database", MasterRegionID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[r.ID]; ok {
		return fmt.Errorf("catalog: region %d already exists", r.ID)
	}
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = 2 * time.Second // the paper's example rate
	}
	c.regions[r.ID] = r
	return nil
}

// Region returns the region with the given id, or nil.
func (c *Catalog) Region(id int) *Region {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.regions[id]
}

// Regions returns all regions sorted by id.
func (c *Catalog) Regions() []*Region {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Region, 0, len(c.regions))
	for _, r := range c.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clone returns a deep copy of the catalog — used to build the cache's
// shadow catalog from the back end's, statistics included.
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for name, t := range c.tables {
		out.tables[name] = t.clone()
	}
	for name, v := range c.views {
		out.views[name] = v.clone()
	}
	for id, r := range c.regions {
		rc := *r
		out.regions[id] = &rc
	}
	return out
}
