// Package relaxedcc_test hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (Section 4),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: benchmarks reporting reproduction quantities attach them
// via b.ReportMetric (e.g. local%/analytic% for Figure 4.2, plan numbers
// for Figure 4.1).
package relaxedcc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"relaxedcc/internal/cc"
	"relaxedcc/internal/core"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/harness"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/qcache"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/tpcd"
	"relaxedcc/internal/tuner"
)

var (
	benchOnce sync.Once
	benchSys  *core.System
	benchErr  error
)

// benchSystem lazily builds the shared experimental system: physical scale
// 0.01 (1,500 customers, 15,000 orders), shadow statistics scaled to the
// paper's scale-1.0 cardinalities.
func benchSystem(b *testing.B) *core.System {
	b.Helper()
	benchOnce.Do(func() {
		benchSys, benchErr = harness.NewSystem(harness.Config{
			ScaleFactor: 0.01, Seed: 2004, ScaleStatsToPaper: true,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys
}

// BenchmarkTable41Setup measures standing up the paper's cache
// configuration (Table 4.1): two currency regions and two materialized
// views over a freshly loaded TPC-D database.
func BenchmarkTable41Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem()
		tpcd.CreateSchema(sys)
		if err := tpcd.SetupCache(sys); err != nil {
			b.Fatal(err)
		}
		if err := tpcd.Load(sys, tpcd.Config{ScaleFactor: 0.002, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig41PlanChoice optimizes every Table 4.2/4.3 query variant,
// verifying each lands on the paper's plan (Figure 4.1), and reports the
// per-query optimization time.
func BenchmarkFig41PlanChoice(b *testing.B) {
	sys := benchSystem(b)
	cases := harness.PlanChoiceCases()
	sels := make([]*sqlparser.SelectStmt, len(cases))
	for i, c := range cases {
		sel, err := sqlparser.ParseSelect(c.SQL)
		if err != nil {
			b.Fatal(err)
		}
		sels[i] = sel
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, sel := range sels {
			plan, _, err := sys.Cache.Plan(sel, opt.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if want := cases[j].Expected; want != 0 && harness.PlanNumber(plan) != want {
				b.Fatalf("%s: got plan %d, want %d", cases[j].Name, harness.PlanNumber(plan), want)
			}
		}
	}
	b.ReportMetric(float64(len(cases)), "queries/op")
}

// BenchmarkFig42aWorkloadVsBound reproduces one point of Figure 4.2(a)
// (d=5s, f=100s, B=55s -> 50% local) and reports measured vs analytic.
func BenchmarkFig42aWorkloadVsBound(b *testing.B) {
	var measured, analytic float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.WorkloadVsBound(
			[]time.Duration{5 * time.Second},
			[]time.Duration{55 * time.Second},
			40)
		if err != nil {
			b.Fatal(err)
		}
		p := pts[5*time.Second][0]
		measured, analytic = p.Measured, p.Analytic
	}
	b.ReportMetric(measured*100, "local%")
	b.ReportMetric(analytic*100, "analytic%")
}

// BenchmarkFig42bWorkloadVsInterval reproduces one point of Figure 4.2(b)
// (d=5s, B=10s, f=20s -> 25% local).
func BenchmarkFig42bWorkloadVsInterval(b *testing.B) {
	var measured, analytic float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.WorkloadVsInterval(
			[]time.Duration{5 * time.Second},
			[]time.Duration{20 * time.Second},
			40)
		if err != nil {
			b.Fatal(err)
		}
		p := pts[5*time.Second][0]
		measured, analytic = p.Measured, p.Analytic
	}
	b.ReportMetric(measured*100, "local%")
	b.ReportMetric(analytic*100, "analytic%")
}

// benchPlan plans sql once and executes it per iteration.
func benchPlan(b *testing.B, sys *core.System, sql string, opts opt.Options) {
	b.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		b.Fatal(err)
	}
	plan, _, err := sys.Cache.Plan(sel, opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &exec.EvalContext{Now: sys.Clock.Now()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, err := plan.Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Run(root, ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable44GuardOverhead times the Table 4.4 configurations: each of
// Q1-Q3 executed down the guarded local branch, the guarded remote branch,
// and as traditional unguarded local/remote plans. Comparing the guard-*
// and plain-* sub-benchmarks yields the table's overhead rows.
func BenchmarkTable44GuardOverhead(b *testing.B) {
	sys := benchSystem(b)
	for _, q := range harness.GuardQueries() {
		b.Run(q.Name+"/guard-local", func(b *testing.B) {
			benchPlan(b, sys, q.Fresh, opt.Options{ForceLocal: true})
		})
		b.Run(q.Name+"/plain-local", func(b *testing.B) {
			benchPlan(b, sys, q.Fresh, opt.Options{NoGuards: true, ForceLocal: true, IgnoreConstraints: true})
		})
		b.Run(q.Name+"/guard-remote", func(b *testing.B) {
			benchPlan(b, sys, q.Stale, opt.Options{ForceLocal: true})
		})
		b.Run(q.Name+"/plain-remote", func(b *testing.B) {
			benchPlan(b, sys, q.Plain, opt.Options{NoViews: true, IgnoreConstraints: true})
		})
	}
}

// BenchmarkTable45GuardPhases reports the per-phase guard overhead
// measurement behind Table 4.5 as custom metrics (microseconds).
func BenchmarkTable45GuardPhases(b *testing.B) {
	sys := benchSystem(b)
	var setup, run, shutdown float64
	for i := 0; i < b.N; i++ {
		measured, err := harness.MeasureGuardOverhead(sys, 70)
		if err != nil {
			b.Fatal(err)
		}
		ov := measured["Q1"]["local"].Overhead()
		setup = float64(ov.Setup.Nanoseconds()) / 1e3
		run = float64(ov.Run.Nanoseconds()) / 1e3
		shutdown = float64(ov.Shutdown.Nanoseconds()) / 1e3
	}
	b.ReportMetric(setup, "setup-us")
	b.ReportMetric(run, "run-us")
	b.ReportMetric(shutdown, "shutdown-us")
}

// ---- ablation benchmarks (DESIGN.md section 5) ----

// BenchmarkAblationGuardVsUnguarded isolates the pure guard cost on the
// smallest local query.
func BenchmarkAblationGuardVsUnguarded(b *testing.B) {
	sys := benchSystem(b)
	q := tpcd.PointQuery(17, "CURRENCY 3600 ON (Customer)")
	b.Run("guarded", func(b *testing.B) { benchPlan(b, sys, q, opt.Options{ForceLocal: true}) })
	b.Run("unguarded", func(b *testing.B) {
		benchPlan(b, sys, q, opt.Options{NoGuards: true, ForceLocal: true, IgnoreConstraints: true})
	})
}

// BenchmarkAblationCostBasedVsAlwaysLocal contrasts the paper's cost-based
// choice with the always-use-the-cache heuristic of earlier systems on Q6
// (where the back-end index makes remote the right answer).
func BenchmarkAblationCostBasedVsAlwaysLocal(b *testing.B) {
	sys := benchSystem(b)
	q := tpcd.RangeQuery(0, 3.85, "CURRENCY 3600 ON (Customer)")
	b.Run("cost-based", func(b *testing.B) { benchPlan(b, sys, q, opt.Options{}) })
	b.Run("always-local", func(b *testing.B) { benchPlan(b, sys, q, opt.Options{ForceLocal: true}) })
}

// BenchmarkOptimizerConsistencyChecking measures the cost of compile-time
// consistency checking by optimizing Q5 (two guarded views) with and
// without constraint machinery engaged.
func BenchmarkOptimizerConsistencyChecking(b *testing.B) {
	sys := benchSystem(b)
	sel, err := sqlparser.ParseSelect(tpcd.JoinQuery("C.c_acctbal >= 0", "CURRENCY 30 ON (C), 30 ON (O)"))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-constraints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Cache.Plan(sel, opt.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ignore-constraints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Cache.Plan(sel, opt.Options{IgnoreConstraints: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConstraintNormalization measures cc.Normalize on the paper's Q2
// constraint shape.
func BenchmarkConstraintNormalization(b *testing.B) {
	reqs := []cc.Requirement{
		{Bound: 5 * time.Minute, Set: []cc.InstanceID{1, 2, 3}},
		{Bound: 10 * time.Minute, Set: []cc.InstanceID{2, 3}},
		{Bound: 30 * time.Minute, Set: []cc.InstanceID{4}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cc.Normalize(reqs)
		if len(c.Classes) != 2 {
			b.Fatal("unexpected normalization")
		}
	}
}

// BenchmarkReplicationApply measures agent throughput applying one
// propagation step of update transactions.
func BenchmarkReplicationApply(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: 0.002, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for k := 1; k <= 100; k++ {
			if _, err := sys.Exec(
				"UPDATE Customer SET c_acctbal = 1.0 WHERE c_custkey = " + itoa(k)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := sys.Run(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "txns/op")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// BenchmarkEndToEndQuery is the adoption-path microbenchmark: the full
// parse-optimize-execute pipeline at the cache for local and remote
// answers.
func BenchmarkEndToEndQuery(b *testing.B) {
	sys := benchSystem(b)
	b.Run("local-point", func(b *testing.B) {
		q := tpcd.PointQuery(17, "CURRENCY 3600 ON (Customer)")
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-point", func(b *testing.B) {
		q := tpcd.PointQuery(17, "")
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResultCache measures the application-level query-result cache
// (internal/qcache) hit path vs. the recompute path.
func BenchmarkResultCache(b *testing.B) {
	sys := benchSystem(b)
	rc := qcache.New(sys.Clock, sys.Cache.NewSession(), 128)
	q := tpcd.PointQuery(17, "CURRENCY 3600 ON (Customer)")
	if _, _, err := rc.Query(q); err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, outcome, err := rc.Query(q); err != nil || outcome != qcache.Hit {
				b.Fatalf("outcome=%v err=%v", outcome, err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		noClause := tpcd.PointQuery(17, "")
		for i := 0; i < b.N; i++ {
			if _, _, err := rc.Query(noClause); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- executor benchmarks: row-at-a-time vs batch vs morsel-parallel ----

var (
	execBenchOnce sync.Once
	execBenchSys  *core.System
	execBenchErr  error
)

// execBenchSystem loads a back end big enough that scan cost dominates:
// scale 0.05 gives 7,500 customers and 75,000 orders.
func execBenchSystem(b *testing.B) *core.System {
	b.Helper()
	execBenchOnce.Do(func() {
		sys := core.NewSystem()
		tpcd.CreateSchema(sys)
		execBenchErr = tpcd.Load(sys, tpcd.Config{ScaleFactor: 0.05, Seed: 7})
		execBenchSys = sys
	})
	if execBenchErr != nil {
		b.Fatal(execBenchErr)
	}
	return execBenchSys
}

// benchStoredSchema builds the executor schema matching a stored table's
// row layout.
func benchStoredSchema(sys *core.System, table string) *exec.Schema {
	def := sys.Backend.Catalog().Table(table)
	cols := make([]exec.Col, len(def.Columns))
	for i, c := range def.Columns {
		cols[i] = exec.Col{Binding: table, Name: c.Name, Kind: c.Type}
	}
	return exec.NewSchema(cols...)
}

func benchCompile(b *testing.B, where string, schema *exec.Schema) exec.Compiled {
	b.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM x WHERE " + where)
	if err != nil {
		b.Fatal(err)
	}
	c, err := exec.Compile(sel.Where, schema)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// runExecBench drains a freshly built tree per iteration — counting rows
// without materializing a result set, so the measurement isolates operator
// throughput — and reports rows/sec plus allocations.
func runExecBench(b *testing.B, build func() exec.Operator, rowMode bool) {
	ctx := &exec.EvalContext{Now: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		op := build()
		if err := op.Open(ctx); err != nil {
			b.Fatal(err)
		}
		rows = 0
		if vop, ok := op.(exec.VecOperator); ok && !rowMode {
			// Columnar drain — the same path Run prefers in production.
			for {
				cb, more, err := vop.NextVec()
				if err != nil {
					b.Fatal(err)
				}
				if !more {
					break
				}
				rows += cb.NumActive()
			}
		} else if bop, ok := op.(exec.BatchOperator); ok && !rowMode {
			for {
				batch, more, err := bop.NextBatch()
				if err != nil {
					b.Fatal(err)
				}
				if !more {
					break
				}
				rows += len(batch)
			}
		} else {
			for {
				_, more, err := op.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !more {
					break
				}
				rows++
			}
		}
		if err := op.Close(); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rows)*float64(b.N)/sec, "rows/sec")
	}
}

// BenchmarkExecScan compares the three execution modes on a full Orders
// scan — the acceptance gate for the batched path (batch >= 2x row) and the
// worker-scaling numbers for the parallel path.
func BenchmarkExecScan(b *testing.B) {
	sys := execBenchSystem(b)
	tbl := sys.Backend.Table("Orders")
	schema := benchStoredSchema(sys, "Orders")
	b.Run("row", func(b *testing.B) {
		runExecBench(b, func() exec.Operator { return exec.NewScan(tbl, schema) }, true)
	})
	b.Run("batch", func(b *testing.B) {
		runExecBench(b, func() exec.Operator { return exec.NewScan(tbl, schema) }, false)
	})
	for _, dop := range []int{2, 4} {
		dop := dop
		b.Run(fmt.Sprintf("parallel-%d", dop), func(b *testing.B) {
			runExecBench(b, func() exec.Operator {
				ps := exec.NewParallelScan(tbl, schema)
				ps.DOP = dop
				return ps
			}, false)
		})
	}
}

// benchKernel compiles the predicate's vectorized kernel, failing the
// benchmark if the expression has no columnar form.
func benchKernel(b *testing.B, where string, schema *exec.Schema) exec.BoolKernel {
	b.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM x WHERE " + where)
	if err != nil {
		b.Fatal(err)
	}
	k, ok := exec.CompileKernel(sel.Where, schema)
	if !ok {
		b.Fatalf("no kernel for %q", where)
	}
	return k
}

// BenchmarkExecFilterScan pushes a ~50%-selective predicate through the
// execution modes: row-at-a-time, batch (row predicate), batch with the
// fused columnar kernel, and morsel-parallel at two worker counts (the
// monotone-scaling gate compares the last two).
func BenchmarkExecFilterScan(b *testing.B) {
	sys := execBenchSystem(b)
	tbl := sys.Backend.Table("Orders")
	schema := benchStoredSchema(sys, "Orders")
	const where = "o_totalprice > 250000"
	pred := benchCompile(b, where, schema)
	kernel := benchKernel(b, where, schema)
	b.Run("row", func(b *testing.B) {
		runExecBench(b, func() exec.Operator {
			s := exec.NewScan(tbl, schema)
			s.Filter = pred
			return s
		}, true)
	})
	b.Run("batch", func(b *testing.B) {
		runExecBench(b, func() exec.Operator {
			s := exec.NewScan(tbl, schema)
			s.Filter = pred
			return s
		}, false)
	})
	b.Run("kernel", func(b *testing.B) {
		runExecBench(b, func() exec.Operator {
			s := exec.NewScan(tbl, schema)
			s.Filter = pred
			s.FilterKernel = kernel
			return s
		}, false)
	})
	for _, dop := range []int{2, 4} {
		dop := dop
		b.Run(fmt.Sprintf("parallel-%d", dop), func(b *testing.B) {
			runExecBench(b, func() exec.Operator {
				ps := exec.NewParallelScan(tbl, schema)
				ps.Filter = pred
				ps.FilterKernel = kernel
				ps.DOP = dop
				return ps
			}, false)
		})
	}
}

// BenchmarkExecHashJoin joins Customer (build) with Orders (probe) in both
// modes; the probe side dominates, so batching the probe stream is what
// pays.
func BenchmarkExecHashJoin(b *testing.B) {
	sys := execBenchSystem(b)
	cust := sys.Backend.Table("Customer")
	orders := sys.Backend.Table("Orders")
	cs := benchStoredSchema(sys, "Customer")
	os := benchStoredSchema(sys, "Orders")
	leftKeySel, err := sqlparser.ParseSelect("SELECT o_custkey FROM x")
	if err != nil {
		b.Fatal(err)
	}
	rightKeySel, err := sqlparser.ParseSelect("SELECT c_custkey FROM x")
	if err != nil {
		b.Fatal(err)
	}
	leftKey, err := exec.Compile(leftKeySel.Items[0].Expr, os)
	if err != nil {
		b.Fatal(err)
	}
	rightKey, err := exec.Compile(rightKeySel.Items[0].Expr, cs)
	if err != nil {
		b.Fatal(err)
	}
	build := func() exec.Operator {
		hj := exec.NewHashJoin(
			exec.NewScan(orders, os), exec.NewScan(cust, cs),
			[]exec.Compiled{leftKey}, []exec.Compiled{rightKey},
			nil, exec.JoinInner)
		// Ordinals as the planner wires them for column-reference keys.
		hj.LeftKeyCols = []int{os.Lookup("Orders", "o_custkey")}
		hj.RightKeyCols = []int{cs.Lookup("Customer", "c_custkey")}
		return hj
	}
	b.Run("row", func(b *testing.B) { runExecBench(b, build, true) })
	b.Run("batch", func(b *testing.B) { runExecBench(b, build, false) })
}

// BenchmarkExecScanMetered re-runs the batch Orders scan with the metrics
// and lifecycle-tracing hot paths engaged — one counter increment and one
// histogram observation per batch, plus a sampled tracer Begin/Finish per
// scan (1 in 8, the production default) — to show instrumentation costs
// < 5% of rows/sec versus BenchmarkExecScan/batch. Compare the two in
// BENCH_exec.json.
func BenchmarkExecScanMetered(b *testing.B) {
	sys := execBenchSystem(b)
	tbl := sys.Backend.Table("Orders")
	schema := benchStoredSchema(sys, "Orders")
	reg := obs.NewRegistry()
	batches := reg.Counter("bench_scan_batches_total")
	sizes := reg.Histogram("bench_scan_batch_rows")
	tracer := obs.NewTracer(reg, obs.DefaultSampleEvery, 256)
	ctx := &exec.EvalContext{Now: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		qt := tracer.Begin("SELECT * FROM Orders")
		var execStart time.Time
		if qt != nil {
			execStart = time.Now()
		}
		op := exec.NewScan(tbl, schema)
		if err := op.Open(ctx); err != nil {
			b.Fatal(err)
		}
		rows = 0
		for {
			// Same columnar drain as the unmetered scan benchmark, plus the
			// per-batch metric touches under test.
			cb, more, err := op.NextVec()
			if err != nil {
				b.Fatal(err)
			}
			if !more {
				break
			}
			rows += cb.NumActive()
			batches.Inc()
			sizes.Observe(int64(cb.NumActive()))
		}
		if err := op.Close(); err != nil {
			b.Fatal(err)
		}
		if qt != nil {
			qt.Exec(time.Since(execStart))
		}
		qt.Finish(false)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rows)*float64(b.N)/sec, "rows/sec")
	}
}

// TestMetricsHotPathZeroAlloc pins the invariant the metered scan benchmark
// relies on: counter increments and histogram observations — including
// through a pre-resolved labeled counter — allocate nothing.
func TestMetricsHotPathZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("hot_counter_total")
	h := reg.Histogram("hot_latency_ns")
	lc := reg.CounterVec("hot_labeled_total", "region").With("1")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(4096)
		h.ObserveDuration(17 * time.Microsecond)
		lc.Inc()
	}); allocs != 0 {
		t.Fatalf("metrics hot path allocated %.1f allocs/op; want 0", allocs)
	}
}

// BenchmarkExecGuardedSwitch executes a currency-guarded point query down
// both guard outcomes — a loose bound the local branch satisfies and a tight
// bound that forces remote fallback — and reports the pick ratio, the
// staleness the guard observed, and the currency-SLO view of the same
// decisions (within-bound ratio and remaining error budget), the numbers
// scripts/bench.sh lifts into BENCH_exec.json.
func BenchmarkExecGuardedSwitch(b *testing.B) {
	sys := benchSystem(b)
	q := harness.GuardQueries()[0]
	plans := make([]*opt.Plan, 2)
	for i, sql := range []string{q.Fresh, q.Stale} {
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			b.Fatal(err)
		}
		plan, _, err := sys.Cache.Plan(sel, opt.Options{ForceLocal: true})
		if err != nil {
			b.Fatal(err)
		}
		plans[i] = plan
	}
	var local, total int64
	reg := obs.NewRegistry()
	stale := reg.Histogram("bench_guard_staleness_ns")
	slo := obs.NewSLOTracker(reg, obs.DefaultSLOTarget, obs.DefaultSLOWindow)
	ctx := &exec.EvalContext{
		Now: sys.Clock.Now(),
		OnGuard: func(d exec.GuardDecision) {
			total++
			if d.Chosen == 0 {
				local++
			}
			if d.StalenessKnown {
				stale.ObserveDuration(d.Staleness)
			}
			slo.Observe(obs.GuardObservation{
				Region:         d.Region,
				Chosen:         d.Chosen,
				Bound:          d.Bound,
				GuardTime:      d.GuardTime,
				Staleness:      d.Staleness,
				StalenessKnown: d.StalenessKnown,
				Degraded:       d.Degraded,
				BlockWaits:     d.BlockWaits,
			})
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			root, err := plan.Build()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Run(root, ctx, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if total > 0 {
		b.ReportMetric(float64(local)/float64(total), "local_ratio")
	}
	b.ReportMetric(float64(stale.Quantile(0.50))/1e6, "stale_p50_ms")
	b.ReportMetric(float64(stale.Quantile(0.95))/1e6, "stale_p95_ms")
	b.ReportMetric(float64(stale.Quantile(0.99))/1e6, "stale_p99_ms")
	if snap := slo.Snapshot(); len(snap.Regions) > 0 {
		within, budget := 1.0, 1.0
		for _, r := range snap.Regions {
			if r.WithinRatio < within {
				within = r.WithinRatio
			}
			if r.ErrorBudget < budget {
				budget = r.ErrorBudget
			}
		}
		b.ReportMetric(within, "slo_within_ratio")
		b.ReportMetric(budget, "slo_error_budget")
	}
}

// BenchmarkExecAutotuneShift runs the workload bound-mix shift scenario
// with closed-loop autotuning enabled and reports the loop's activity and
// the post-shift serve quality — the numbers scripts/bench.sh lifts into
// BENCH_exec.json and scripts/check_bench.sh gates on (the loop must retune
// and the post-shift SLO must recover).
func BenchmarkExecAutotuneShift(b *testing.B) {
	cfg := harness.DefaultShiftConfig()
	// Compact arm (same sizing as the harness shift tests): half the run,
	// still burns and fully recovers the budget.
	cfg.Duration = 160 * time.Second
	cfg.ShiftAt = 60 * time.Second
	cfg.UpdateInterval = 30 * time.Second
	cfg.SLOWindow = 128
	cfg.Tuner = tuner.LoopConfig{Cadence: 10 * time.Second}
	cfg.Autotune = true
	var rep *harness.ShiftReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = harness.RunShift(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Recovered {
		b.Fatalf("budget never recovered: final %.3f vs pre-shift %.3f",
			rep.FinalBudget, rep.PreShiftBudget)
	}
	b.ReportMetric(float64(rep.Retunes), "retunes_total")
	b.ReportMetric(rep.PostShiftWithinRatio, "post_shift_slo_within_ratio")
	b.ReportMetric(rep.FinalBudget, "slo_error_budget")
}

// BenchmarkRegionTuner measures the tuner's optimization cost.
func BenchmarkRegionTuner(b *testing.B) {
	w := tuner.Workload{
		QueriesPerSecond: 50,
		Bounds: []tuner.BoundShare{
			{Bound: 10 * time.Second, Weight: 0.3},
			{Bound: time.Minute, Weight: 0.3},
			{Bound: 10 * time.Minute, Weight: 0.4},
		},
	}
	c := tuner.Costs{RefreshCost: 10, RemotePenalty: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Tune(w, c, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
