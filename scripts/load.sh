#!/usr/bin/env bash
# Runs the open-loop macro-benchmark (rccbench -load) and writes
# BENCH_load.json in the repo root: throughput-vs-latency curves
# (p50/p99/p999 from scheduled arrival), guard pick ratios, served-staleness
# percentiles and per-tenant SLO budgets per offered-QPS step, plus the
# saturation knee. Usage: scripts/load.sh [short], where "short" selects the
# 3-step CI smoke sweep instead of the full 5-step saturation sweep.
set -euo pipefail

cd "$(dirname "$0")/.."
out="BENCH_load.json"

args=(-load -load-json "$out")
if [[ "${1:-}" == "short" ]]; then
    args+=(-load-short)
fi

go run ./cmd/rccbench "${args[@]}"
