#!/usr/bin/env bash
# Runs the executor benchmarks (row vs batch vs morsel-parallel, plus the
# guarded SwitchUnion benchmark) and writes BENCH_exec.json in the repo root
# with ns/op, rows/sec, B/op and allocs/op per benchmark, and — where the
# benchmark reports them — the guard-branch pick ratio, the staleness
# percentiles observed at guard time, the currency-SLO view of the same
# guard decisions (within-bound ratio, remaining error budget), and the
# closed-loop autotuner's shift-scenario outcome (retunes, post-shift
# within-bound ratio). Usage: scripts/bench.sh [benchtime], default 2s.
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-2s}"
out="BENCH_exec.json"

raw=$(go test -run '^$' -bench 'BenchmarkExec' -benchtime "$benchtime" -benchmem .)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "["; first = 1 }
/^BenchmarkExec/ {
    # Names keep any -N suffix verbatim: Go only appends a -GOMAXPROCS
    # suffix when GOMAXPROCS > 1, and sub-benchmark names like parallel-4
    # are indistinguishable from it.
    name = $1
    ns = ""; rps = ""; bop = ""; aop = ""
    ratio = ""; p50 = ""; p95 = ""; p99 = ""; within = ""; budget = ""
    retunes = ""; pswithin = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")            ns     = $i
        if ($(i+1) == "rows/sec")         rps    = $i
        if ($(i+1) == "B/op")             bop    = $i
        if ($(i+1) == "allocs/op")        aop    = $i
        if ($(i+1) == "local_ratio")      ratio  = $i
        if ($(i+1) == "stale_p50_ms")     p50    = $i
        if ($(i+1) == "stale_p95_ms")     p95    = $i
        if ($(i+1) == "stale_p99_ms")     p99    = $i
        if ($(i+1) == "slo_within_ratio") within = $i
        if ($(i+1) == "slo_error_budget") budget = $i
        if ($(i+1) == "retunes_total")    retunes = $i
        if ($(i+1) == "post_shift_slo_within_ratio") pswithin = $i
    }
    if (!first) print ","
    first = 0
    printf "  {\"name\": \"%s\", \"ns_op\": %s, \"rows_per_sec\": %s, \"B_op\": %s, \"allocs_op\": %s, \"guard_local_ratio\": %s, \"stale_p50_ms\": %s, \"stale_p95_ms\": %s, \"stale_p99_ms\": %s, \"slo_within_ratio\": %s, \"slo_error_budget\": %s, \"retunes_total\": %s, \"post_shift_slo_within_ratio\": %s}", \
        name, ns == "" ? "null" : ns, rps == "" ? "null" : rps, \
        bop == "" ? "null" : bop, aop == "" ? "null" : aop, \
        ratio == "" ? "null" : ratio, p50 == "" ? "null" : p50, \
        p95 == "" ? "null" : p95, p99 == "" ? "null" : p99, \
        within == "" ? "null" : within, budget == "" ? "null" : budget, \
        retunes == "" ? "null" : retunes, pswithin == "" ? "null" : pswithin
}
END { print "\n]" }
' > "$out"

echo "wrote $out"
