#!/usr/bin/env bash
# Validates the schema of BENCH_exec.json (written by scripts/bench.sh) so
# CI fails loudly when the bench output drifts instead of silently uploading
# garbage.
#
# Usage: scripts/check_bench.sh [compare] [file [baseline]]
#   default: schema + absolute performance gates on BENCH_exec.json
#   compare: additionally diff against the committed BENCH_baseline.json
#            with tolerance bands — allocs/op tight (deterministic counts,
#            ALLOC_TOL, default 10%), rows/sec loose (machine-dependent,
#            RPS_TOL, default 60% drop) — so a perf regression fails CI even
#            when it stays under the absolute ceilings.
set -euo pipefail

cd "$(dirname "$0")/.."
compare=0
if [[ "${1:-}" == "compare" ]]; then
  compare=1
  shift
fi
file="${1:-BENCH_exec.json}"
baseline="${2:-BENCH_baseline.json}"

[ -f "$file" ] || { echo "check_bench: $file not found" >&2; exit 1; }

jq -e '
  # A non-empty array of benchmark entries...
  (type == "array" and length > 0)
  # ...each with a name and a numeric ns/op...
  and all(.[];
    (.name | type == "string" and startswith("BenchmarkExec"))
    and (.ns_op | type == "number")
    and (.rows_per_sec | type == "number" or . == null)
    and (.B_op | type == "number" or . == null)
    and (.allocs_op | type == "number" or . == null)
    # ...a guard-branch pick ratio in [0, 1] where reported...
    and (.guard_local_ratio | (type == "number" and . >= 0 and . <= 1) or . == null)
    # ...and monotone staleness percentiles where reported.
    and (.stale_p50_ms | type == "number" or . == null)
    and (.stale_p95_ms | type == "number" or . == null)
    and (.stale_p99_ms | type == "number" or . == null)
    and (if (.stale_p50_ms != null and .stale_p95_ms != null and .stale_p99_ms != null)
         then .stale_p50_ms <= .stale_p95_ms and .stale_p95_ms <= .stale_p99_ms
         else true end)
    # ...and per-region currency-SLO figures in [0, 1] where reported.
    and (.slo_within_ratio | (type == "number" and . >= 0 and . <= 1) or . == null)
    and (.slo_error_budget | (type == "number" and . >= 0 and . <= 1) or . == null)
    # ...and autotuner shift-scenario figures where reported: a non-negative
    # retune count and a post-shift within-bound ratio in [0, 1].
    and (.retunes_total | (type == "number" and . >= 0) or . == null)
    and (.post_shift_slo_within_ratio | (type == "number" and . >= 0 and . <= 1) or . == null)
  )
  # The guarded SwitchUnion benchmark must be present with its C&C columns.
  and any(.[]; .guard_local_ratio != null and .stale_p95_ms != null)
  # The SLO view of the same guard decisions must ride along.
  and any(.[]; .slo_within_ratio != null and .slo_error_budget != null)
  # The autotune shift benchmark must be present with the loop columns.
  and any(.[]; .retunes_total != null and .post_shift_slo_within_ratio != null)
' "$file" > /dev/null

# --- Performance gates -----------------------------------------------------
# Schema being valid is not enough: the two executor regressions this repo
# has actually shipped — allocation blowups in the join and non-monotone
# parallel scaling — are cheap to catch mechanically, so the gates live here
# rather than in reviewers' heads. Benchmark names may carry a -GOMAXPROCS
# suffix, hence the (-[0-9]+)?$ in the matchers.

# gate_allocs NAME CEILING: allocs/op for the named benchmark must not
# exceed the ceiling.
gate_allocs() {
  jq -e --arg n "$1" --argjson cap "$2" '
    def entry($n): map(select(.name | test("^" + $n + "(-[0-9]+)?$"))) | .[0];
    (entry($n)) as $e
    | if $e == null then ("check_bench: missing benchmark " + $n) | halt_error
      elif $e.allocs_op == null then ("check_bench: " + $n + " has no allocs_op") | halt_error
      elif $e.allocs_op > $cap then
        ("check_bench: " + $n + " allocs/op regressed: \($e.allocs_op) > \($cap)") | halt_error
      else true end
  ' "$file" > /dev/null
}

# gate_monotone BASE: rows/sec at parallel-4 must be at least 90% of
# parallel-2 (equal-or-better scaling, with headroom for run-to-run noise).
gate_monotone() {
  jq -e --arg n "$1" '
    def rps($n): map(select(.name | test("^" + $n + "(-[0-9]+)?$"))) | .[0].rows_per_sec;
    (rps($n + "/parallel-2")) as $p2 | (rps($n + "/parallel-4")) as $p4
    | if $p2 == null or $p4 == null then
        ("check_bench: " + $n + " missing parallel-2/parallel-4 rows/sec") | halt_error
      elif $p4 < 0.9 * $p2 then
        ("check_bench: " + $n + " parallel scaling non-monotone: parallel-4 \($p4) < 0.9 * parallel-2 \($p2)") | halt_error
      else true end
  ' "$file" > /dev/null
}

# gate_autotune NAME: the shift benchmark's closed loop must actually act
# (at least 2 retunes — one max-step round cannot cross the 4x cap) and the
# post-shift SLO must recover (a majority of post-shift serves within
# bound; the no-autotune arm sits under 10%).
gate_autotune() {
  jq -e --arg n "$1" '
    def entry($n): map(select(.name | test("^" + $n + "(-[0-9]+)?$"))) | .[0];
    (entry($n)) as $e
    | if $e == null then ("check_bench: missing benchmark " + $n) | halt_error
      elif $e.retunes_total == null or $e.retunes_total < 2 then
        ("check_bench: " + $n + " autotuner inactive: retunes_total \($e.retunes_total)") | halt_error
      elif $e.post_shift_slo_within_ratio == null or $e.post_shift_slo_within_ratio < 0.5 then
        ("check_bench: " + $n + " post-shift SLO did not recover: \($e.post_shift_slo_within_ratio)") | halt_error
      else true end
  ' "$file" > /dev/null
}

# The hash join ran at ~412,600 allocs/op before the vectorized rebuild;
# the ceiling holds the ≥10x reduction (it sits ~100x below the old number,
# ~160x above the current one, so only a real regression trips it).
gate_allocs 'BenchmarkExecHashJoin/batch' 41000
# The streaming batch scan allocates only pooled containers.
gate_allocs 'BenchmarkExecScan/batch' 100
gate_monotone 'BenchmarkExecScan'
gate_monotone 'BenchmarkExecFilterScan'
gate_autotune 'BenchmarkExecAutotuneShift'

# --- Baseline comparison ---------------------------------------------------
# Relative gates against the committed baseline. allocs/op is a counted
# quantity — identical across machines for the same code — so its band is
# tight. rows/sec depends on the runner, so its band only catches order-of-
# magnitude collapses; the absolute gates above carry the precise limits.
if [ "$compare" = 1 ]; then
  [ -f "$baseline" ] || { echo "check_bench: baseline $baseline not found" >&2; exit 1; }
  alloc_tol="${ALLOC_TOL:-0.10}"
  rps_tol="${RPS_TOL:-0.60}"
  jq -e -n --slurpfile cur "$file" --slurpfile base "$baseline" \
        --argjson atol "$alloc_tol" --argjson rtol "$rps_tol" '
    def strip: sub("-[0-9]+$"; "");
    ($cur[0]  | map({(.name | strip): .}) | add) as $c
    | ($base[0] | map({(.name | strip): .}) | add) as $b
    | [$b | keys[] | select($c[.] != null)] as $names
    | if ($names | length) == 0 then
        "check_bench: no overlapping benchmarks between \($cur) and baseline" | halt_error
      else
        all($names[];
          . as $n | $b[$n] as $be | $c[$n] as $ce
          | (if $be.allocs_op != null and $ce.allocs_op != null
               and $ce.allocs_op > $be.allocs_op * (1 + $atol) then
               ("check_bench: \($n) allocs/op regressed vs baseline: " +
                "\($ce.allocs_op) > \($be.allocs_op) * \(1 + $atol)") | halt_error
             else true end)
          and
            (if $be.rows_per_sec != null and $ce.rows_per_sec != null
               and $ce.rows_per_sec < $be.rows_per_sec * (1 - $rtol) then
               ("check_bench: \($n) rows/sec regressed vs baseline: " +
                "\($ce.rows_per_sec) < \($be.rows_per_sec) * \(1 - $rtol)") | halt_error
             else true end)
        )
      end
  ' > /dev/null
  echo "check_bench: $file within tolerance of $baseline (allocs +${ALLOC_TOL:-0.10}, rows/sec -${RPS_TOL:-0.60})"
fi

echo "check_bench: $file ok ($(jq length "$file") benchmark(s))"
