#!/usr/bin/env bash
# Validates the schema of BENCH_exec.json (written by scripts/bench.sh) so
# CI fails loudly when the bench output drifts instead of silently uploading
# garbage. Usage: scripts/check_bench.sh [file], default BENCH_exec.json.
set -euo pipefail

cd "$(dirname "$0")/.."
file="${1:-BENCH_exec.json}"

[ -f "$file" ] || { echo "check_bench: $file not found" >&2; exit 1; }

jq -e '
  # A non-empty array of benchmark entries...
  (type == "array" and length > 0)
  # ...each with a name and a numeric ns/op...
  and all(.[];
    (.name | type == "string" and startswith("BenchmarkExec"))
    and (.ns_op | type == "number")
    and (.rows_per_sec | type == "number" or . == null)
    and (.B_op | type == "number" or . == null)
    and (.allocs_op | type == "number" or . == null)
    # ...a guard-branch pick ratio in [0, 1] where reported...
    and (.guard_local_ratio | (type == "number" and . >= 0 and . <= 1) or . == null)
    # ...and monotone staleness percentiles where reported.
    and (.stale_p50_ms | type == "number" or . == null)
    and (.stale_p95_ms | type == "number" or . == null)
    and (.stale_p99_ms | type == "number" or . == null)
    and (if (.stale_p50_ms != null and .stale_p95_ms != null and .stale_p99_ms != null)
         then .stale_p50_ms <= .stale_p95_ms and .stale_p95_ms <= .stale_p99_ms
         else true end)
    # ...and per-region currency-SLO figures in [0, 1] where reported.
    and (.slo_within_ratio | (type == "number" and . >= 0 and . <= 1) or . == null)
    and (.slo_error_budget | (type == "number" and . >= 0 and . <= 1) or . == null)
  )
  # The guarded SwitchUnion benchmark must be present with its C&C columns.
  and any(.[]; .guard_local_ratio != null and .stale_p95_ms != null)
  # The SLO view of the same guard decisions must ride along.
  and any(.[]; .slo_within_ratio != null and .slo_error_budget != null)
' "$file" > /dev/null

echo "check_bench: $file ok ($(jq length "$file") benchmark(s))"
