#!/usr/bin/env bash
# Lints metric names: every metric registered in non-test Go sources (string
# literals passed to Registry.Counter/Gauge/Histogram/CounterVec/GaugeVec/
# HistogramVec) must be lowercase_snake ([a-z][a-z0-9_]*) and registered
# under a single spelling per kind-call site (duplicate literals usually mean
# two subsystems fighting over one name). Shared get-or-create registration
# inside one package is fine; this check flags the same literal appearing in
# more than one file.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# file:name pairs for every registration literal.
pairs=$(grep -rhoE '\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("[^"]+"' \
    --include='*.go' --exclude='*_test.go' internal cmd 2>/dev/null |
    sed -E 's/.*\("([^"]+)"/\1/' | sort) || true

if [ -z "$pairs" ]; then
    echo "metrics-lint: no metric registrations found" >&2
    exit 1
fi

# 1. Naming: lowercase_snake only.
bad=$(echo "$pairs" | grep -vE '^[a-z][a-z0-9_]*$' || true)
if [ -n "$bad" ]; then
    echo "metrics-lint: metric names must match ^[a-z][a-z0-9_]*\$:" >&2
    echo "$bad" | sed 's/^/  /' >&2
    fail=1
fi

# 2. Uniqueness: a name may be registered from only one source file.
dups=$(grep -rloE '\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("[^"]+"' \
    --include='*.go' --exclude='*_test.go' internal cmd 2>/dev/null | while read -r f; do
    grep -hoE '\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("[^"]+"' "$f" |
        sed -E 's/.*\("([^"]+)"/\1/' | sort -u | sed "s|^|$f |"
done | awk '{ seen[$2] = seen[$2] ? seen[$2] "," $1 : $1; n[$2]++ }
    END { for (m in n) if (n[m] > 1) print m " registered in " seen[m] }')
if [ -n "$dups" ]; then
    echo "metrics-lint: metric names registered from multiple files:" >&2
    echo "$dups" | sed 's/^/  /' >&2
    fail=1
fi

count=$(echo "$pairs" | sort -u | wc -l)
if [ "$fail" -eq 0 ]; then
    echo "metrics-lint: $count metric names ok"
fi
exit "$fail"
