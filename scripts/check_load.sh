#!/usr/bin/env bash
# Validates the schema and sanity gates of BENCH_load.json (written by
# scripts/load.sh / `rccbench -load`): the open-loop macro-benchmark report
# must carry at least 3 offered-QPS steps in strictly ascending order, each
# with ordered latency percentiles (p50 <= p99 <= p999) measured from
# scheduled arrival, a guard pick ratio and per-tenant SLO figures in
# [0, 1], served-staleness percentiles, and the saturation-knee summary.
# Usage: scripts/check_load.sh [file], default BENCH_load.json.
set -euo pipefail

cd "$(dirname "$0")/.."
file="${1:-BENCH_load.json}"

[ -f "$file" ] || { echo "check_load: $file not found" >&2; exit 1; }

jq -e '
  # Run header: seed, arrival discipline, worker count, knee, SLO snapshot.
  (.seed | type == "number")
  and (.arrival == "uniform" or .arrival == "poisson")
  and (.workers >= 1)
  and (.zipf_s > 1)
  and (.zipf_keys >= 1)
  and (.slo_target > 0 and .slo_target <= 1)
  and (.knee_qps | type == "number" and . >= 0)
  and (.slo | (.target > 0) and (.regions | length > 0))
  # The sweep: at least 3 steps, offered QPS strictly ascending.
  and (.steps | type == "array" and length >= 3)
  and ([.steps[].offered_qps] | . == sort and (unique | length) == length)
  and all(.steps[];
    # Traffic flowed and the bookkeeping adds up.
    (.queries > 0)
    and (.answered + .failed == .queries)
    and (.achieved_qps >= 0)
    # Open-loop latency percentiles are ordered.
    and (.latency_p50_ns <= .latency_p99_ns)
    and (.latency_p99_ns <= .latency_p999_ns)
    and (.latency_p999_ns <= .latency_max_ns)
    # Ratios live in [0, 1].
    and (.guard_local_ratio >= 0 and .guard_local_ratio <= 1)
    and (.degraded_ratio >= 0 and .degraded_ratio <= 1)
    # Served-staleness percentiles are ordered.
    and (.staleness_p50_ns <= .staleness_p95_ns)
    and (.staleness_p95_ns <= .staleness_p99_ns)
    and (.staleness_p99_ns <= .staleness_max_ns)
    # Every step reports per-tenant SLO slices with sane figures.
    and (.tenants | length > 0)
    and all(.tenants[];
      (.class | type == "string" and length > 0)
      and (.action == "error" or .action == "serve-stale"
           or .action == "serve-local" or .action == "block")
      and (.queries > 0)
      and (.within >= 0 and .within <= .queries)
      and (.slo_within_ratio >= 0 and .slo_within_ratio <= 1)
      and (.slo_error_budget >= 0 and .slo_error_budget <= 1)
      and (.latency_p50_ns <= .latency_p99_ns)
      and (.latency_p99_ns <= .latency_p999_ns))
    # And per-region workload profiles from the observer window.
    and (.regions | length > 0)
    and all(.regions[]; .queries >= 0 and .region >= 1)
  )
  # The knee, when found, names one of the offered steps.
  and (.knee_qps as $k | $k == 0 or ([.steps[].offered_qps] | index($k) != null))
' "$file" > /dev/null

steps=$(jq '.steps | length' "$file")
knee=$(jq '.knee_qps' "$file")
echo "check_load: $file ok ($steps step(s), knee ${knee} qps)"
