#!/usr/bin/env bash
# Runs the full test suite with coverage and enforces a minimum total
# statement coverage. Writes cover.out (profile) and prints the per-function
# tail. Usage: scripts/cover.sh [min-percent], default ${MIN_COVER:-70}.
set -euo pipefail

cd "$(dirname "$0")/.."
min="${1:-${MIN_COVER:-70}}"
profile="cover.out"

go test -coverprofile "$profile" -covermode atomic ./...
total=$(go tool cover -func "$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total statement coverage: ${total}% (minimum ${min}%)"

# Integer-free comparison via awk so fractional percentages work.
if awk -v t="$total" -v m="$min" 'BEGIN { exit !(t < m) }'; then
    echo "coverage ${total}% is below the ${min}% gate" >&2
    exit 1
fi
