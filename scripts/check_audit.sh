#!/usr/bin/env bash
# Validates the schema and gates of audit.json (written by
# `rccbench ... -audit -snapshot DIR`): the delivered-guarantee audit ledger
# must be enabled, have checked reads, conserve its classification counts
# (ok + currency violations + disclosed + unbounded + unchecked ==
# reads_checked), and report no ring drops.
#
# Default mode is the honest-run gate: zero silent violations. With --broken
# the gate inverts: the deliberately broken guard-lie schedule must produce
# at least one violation, with evidence naming the object, the declared
# bound, the delivered staleness and the excess.
# Usage: scripts/check_audit.sh [--broken] [file], default audit.json.
set -euo pipefail

cd "$(dirname "$0")/.."
broken=0
if [ "${1:-}" = "--broken" ]; then
  broken=1
  shift
fi
file="${1:-audit.json}"

[ -f "$file" ] || { echo "check_audit: $file not found" >&2; exit 1; }

jq -e '
  (.enabled == true)
  and (.reads_checked | type == "number" and . > 0)
  # Every read classifies exactly once (consistency violations are
  # query-level extras on top of individually-OK reads).
  and (.ok + .currency_violations + .disclosed + .unbounded + .unchecked
       == .reads_checked)
  and (.violations_total == .currency_violations + .consistency_violations)
  and (.recent_violations | type == "array")
  and (.commits | type == "number" and . > 0)
  and (.dropped_commits == 0)
  and (.dropped_reads == 0)
  and (.dropped_applies == 0)
' "$file" > /dev/null

if [ "$broken" = 1 ]; then
  jq -e '
    (.violations_total >= 1)
    and (.recent_violations | length >= 1)
    and all(.recent_violations[];
      (.class == "currency" or .class == "consistency")
      and (.object | type == "string" and length > 0)
      and (.bound_ns > 0)
      and (.delivered_ns > .bound_ns)
      and (.excess_ns == .delivered_ns - .bound_ns)
      and (.serve_ts_ns > 0))
  ' "$file" > /dev/null
else
  jq -e '
    (.violations_total == 0) and (.recent_violations | length == 0)
  ' "$file" > /dev/null
fi

checked=$(jq '.reads_checked' "$file")
viols=$(jq '.violations_total' "$file")
mode=honest
[ "$broken" = 1 ] && mode=broken-guard
echo "check_audit: $file ok ($mode mode, $checked read(s) checked, $viols violation(s))"
