GO ?= go

.PHONY: build test vet race bench metrics-lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages that exercise concurrent execution paths.
race:
	$(GO) test -race ./internal/exec/... ./internal/core/...

# Check that all registered metric names are lowercase_snake and unique.
metrics-lint:
	./scripts/metrics_lint.sh

# Tier-1 verification line (see ROADMAP.md).
verify: build vet metrics-lint test race

# Executor benchmarks: row-at-a-time vs batch vs morsel-parallel.
# Emits BENCH_exec.json with rows/sec per benchmark.
bench:
	./scripts/bench.sh
