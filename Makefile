GO ?= go

.PHONY: build test vet race lint lint-fixtures bench bench-compare load metrics-lint verify cover chaos audit audit-broken

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages that exercise concurrent execution paths,
# including the resilient link, fault injector and chaos workload.
race:
	$(GO) test -race ./internal/exec/... ./internal/core/... ./internal/mtcache/... ./internal/repl/... ./internal/remote/... ./internal/fault/... ./internal/vclock/... ./internal/harness/...

# Run the full in-repo static-analysis suite (cmd/rcclint), all seven
# analyzers: operator Close propagation, lock pairing and ordering,
# atomic/plain mixed access, metric-name hygiene, wall-clock determinism
# (wallclock), the columnar selection-vector contract (selvec), and
# goroutine join/shutdown ownership (goownership).
lint:
	$(GO) run ./cmd/rcclint

# Run only the analyzers' own fixture tests: every known-bad/known-good
# package under internal/analysis/testdata/src, checked against their
# want:<analyzer> markers, plus the ignore-directive and -strict suites.
lint-fixtures:
	$(GO) test ./internal/analysis/ -run 'TestFixtures|TestIgnore|TestStrict|TestMetricNames'

# Check that all registered metric names are lowercase_snake and unique.
# Kept as a named target for the tier-1 line; now a subset of `make lint`.
metrics-lint:
	$(GO) run ./cmd/rcclint -only metricnames

# Tier-1 verification line (see ROADMAP.md).
verify: build vet lint test race

# Executor benchmarks: row-at-a-time vs batch vs morsel-parallel.
# Emits BENCH_exec.json with rows/sec per benchmark.
bench:
	./scripts/bench.sh

# Compare BENCH_exec.json against the committed BENCH_baseline.json with
# tolerance bands (allocs/op tight, rows/sec loose): the perf-regression
# gate. Run `make bench` first so BENCH_exec.json exists.
bench-compare:
	./scripts/check_bench.sh compare

# Open-loop macro-benchmark: saturation sweep over multi-tenant sessions,
# emits BENCH_load.json (same as `rccbench -load`). `make load SHORT=1`
# runs the 3-step CI smoke sweep.
load:
	./scripts/load.sh $(if $(SHORT),short,)

# Coverage with a minimum-total gate (MIN_COVER, default 70%). CI runs the
# same script, so the gate is identical locally and in the workflow.
cover:
	./scripts/cover.sh

# Deterministic fault-injection run: availability and served-staleness
# percentiles under link faults (same as `rccbench -chaos`).
chaos:
	$(GO) run ./cmd/rccbench -chaos

# Chaos run with the delivered-guarantee auditor: snapshot validated by
# scripts/check_audit.sh (zero silent violations, conserved counts).
audit:
	$(GO) run ./cmd/rccbench -chaos -audit -snapshot audit-snapshot
	./scripts/check_audit.sh audit-snapshot/audit.json

# Negative control: the deliberately broken guard-lie schedule; the gate
# inverts and requires the auditor to flag it with evidence.
audit-broken:
	$(GO) run ./cmd/rccbench -chaos -audit -broken-guard -snapshot audit-broken-snapshot
	./scripts/check_audit.sh --broken audit-broken-snapshot/audit.json
